(** Boolean duality.

    f{^D}(x{_1}, ..., x{_n}) = NOT f(NOT x{_1}, ..., NOT x{_n}).

    Duality drives both two- and four-terminal synthesis: the FET array
    needs products of [f] and [f{^D}] (Fig. 3) and the Altun–Riedel
    lattice is a products-of-[f] by products-of-[f{^D}] grid (Fig. 5).
    The key structural fact, proved in Altun–Riedel (IEEE TC 2012) and
    re-checked by this module's tests, is that {e every} product of any
    SOP of [f] shares a literal with every product of any SOP of
    [f{^D}]. *)

val table : Truth_table.t -> Truth_table.t

val func : Boolfunc.t -> Boolfunc.t

val cover : Cover.t -> Cover.t
(** De Morgan dual of a cover: swap AND/OR and re-minimize.  The result
    is an SOP of the dual function. *)

val is_self_dual : Boolfunc.t -> bool

val check_sharing : Cover.t -> Cover.t -> bool
(** [check_sharing f_cover d_cover] verifies the duality sharing lemma:
    every cube of the first cover shares a same-polarity literal with
    every cube of the second.  Holds whenever the covers denote a
    function and its dual (unless one side is constant). *)
