(** GF(2) linear algebra and D-reducible functions.

    A function [f] is {e D-reducible} (Bernasconi–Ciriani, TODAES 2011)
    when its ON-set is contained in an affine space [A] strictly smaller
    than the whole Boolean cube; then [f = chi_A AND f_A] where [chi_A]
    is the characteristic function of [A] and [f_A] the projection of
    [f] onto [A].  Section III.B.2 of the paper exploits this to
    synthesize smaller lattices. *)

type space = {
  n : int;
  constraints : (int * bool) list;
      (** Parity checks [(mask, rhs)]: a point [x] lies in the space iff
          for every check, [parity (x AND mask) = rhs].  The masks form
          a GF(2)-independent set in reduced row-echelon form. *)
  pivot_vars : int list;
      (** One pivot variable per constraint, determined by the others. *)
  free_vars : int list;
      (** The remaining variables; they parametrize the space. *)
}

val dimension : space -> int
(** Number of free variables: [log2] of the space's cardinality. *)

val full_space : int -> space

val mem : space -> int -> bool

val points : space -> int list
(** All members, encoded as minterms; exponential in [dimension]. *)

val affine_hull : n:int -> int list -> space
(** Smallest affine space containing the given nonempty point set. *)

val chi : space -> Truth_table.t
(** Characteristic function of the space (over [n] variables). *)

val constraint_function : int -> int * bool -> Truth_table.t
(** [constraint_function n (mask, rhs)] is the single parity check
    [parity(x AND mask) = rhs] as a function of [n] variables. *)

type reduction = {
  space : space;
  projection : Truth_table.t;
      (** [f_A] as a function of the free variables only (arity
          [dimension space]), free variables ordered as in
          [space.free_vars]. *)
}

val d_reduction : Boolfunc.t -> reduction option
(** [Some r] when [f] is D-reducible (hull strictly smaller than the
    full cube and [f] not constant-0); [None] otherwise. *)

val reconstruct : n:int -> reduction -> Truth_table.t
(** Rebuild [chi_A AND f_A] over the original variables — used by tests
    to validate a reduction. *)
