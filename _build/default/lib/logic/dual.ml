let table = Truth_table.dual

let func = Boolfunc.dual

let cover c =
  let tt = Truth_table.dual (Truth_table.of_cover c) in
  Minimize.sop_table tt

let is_self_dual f = Truth_table.is_self_dual (Boolfunc.table f)

let check_sharing f_cover d_cover =
  List.for_all
    (fun p ->
      List.for_all (fun q -> Cube.shares_literal p q) (Cover.cubes d_cover))
    (Cover.cubes f_cover)
