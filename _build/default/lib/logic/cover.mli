(** Sum-of-products covers.

    A cover is a set of cubes over a common variable count; it denotes
    the disjunction of its cubes.  This is the canonical circuit-level
    representation in the paper: nano-crossbar arrays can only realize
    functions in SOP form (Section III.A), so every synthesis procedure
    in this project consumes covers. *)

type t

val make : int -> Cube.t list -> t
(** [make n cubes] builds a cover over [n] variables.  Duplicate cubes
    are removed.  Raises [Invalid_argument] on arity mismatch. *)

val n_vars : t -> int

val cubes : t -> Cube.t list
(** The cubes, in a deterministic order. *)

val num_cubes : t -> int

val num_literals : t -> int
(** Total literal count over all cubes (the paper's "number of literals
    in f" for the diode-array size formula counts distinct literals; see
    {!distinct_literals}). *)

val distinct_literals : t -> (int * Cube.polarity) list
(** The set of distinct literals appearing in the cover, sorted. *)

val bottom : int -> t
(** Empty cover: constant 0. *)

val top : int -> t
(** Cover containing the universal cube: constant 1. *)

val is_bottom : t -> bool

val eval : t -> bool array -> bool

val eval_int : t -> int -> bool

val add : t -> Cube.t -> t

val union : t -> t -> t

val product : t -> t -> t
(** Pairwise cube intersections (distribution of AND over OR). *)

val cofactor : t -> int -> Cube.polarity -> t
(** Shannon cofactor with respect to a literal. *)

val cube_cofactor : t -> Cube.t -> t
(** Generalized cofactor of the cover with respect to a cube. *)

val is_tautology : t -> bool
(** Unate-reduction + Shannon recursion tautology check. *)

val covers_cube : t -> Cube.t -> bool
(** [covers_cube f c] is true when every minterm of [c] satisfies [f]. *)

val covers : t -> t -> bool
(** Cover-level containment: [covers f g] iff g implies f. *)

val equivalent : t -> t -> bool

val complement : t -> t
(** A cover of the complement (unate-recursive paradigm).  The result is
    made single-cube-irredundant but not necessarily minimal. *)

val irredundant : t -> t
(** Removes cubes covered by the rest of the cover. *)

val single_cube_containment : t -> t
(** Removes cubes contained in another single cube of the cover. *)

val minterms : t -> int list
(** Sorted list of satisfying assignments; exponential, small [n] only. *)

val of_minterms : int -> int list -> t

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
(** Prints e.g. [x1x2' + x3]; constant covers print as [0] / [1]. *)

val to_string : t -> string
