(** Exact two-level minimization (Quine–McCluskey).

    Prime implicant generation by iterative merging, then a covering
    step: essential primes first, remaining minterms by branch-and-bound
    (exact, with a node budget) falling back to greedy set cover when
    the budget is exhausted. *)

val primes : n:int -> on:int list -> dc:int list -> Cube.t list
(** All prime implicants of the function given by ON-set and DC-set
    minterms. *)

type stats = {
  num_primes : int;
  num_essential : int;
  exact : bool;  (** false when the covering step fell back to greedy *)
}

val minimize :
  ?dc:int list -> ?budget:int -> n:int -> int list -> Cover.t * stats
(** [minimize ~n on] is a minimum (or near-minimum, see
    {!field-stats.exact}) cover of the ON-set minterms using the DC-set
    freely.  [budget] bounds the branch-and-bound node count (default
    200_000). *)

val minimize_table : ?budget:int -> Truth_table.t -> Cover.t * stats

val minimize_func : ?budget:int -> Boolfunc.t -> Cover.t * stats
