lib/logic/parse.mli: Boolfunc Cover
