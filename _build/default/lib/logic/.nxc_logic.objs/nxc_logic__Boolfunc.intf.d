lib/logic/boolfunc.mli: Cover Format Truth_table
