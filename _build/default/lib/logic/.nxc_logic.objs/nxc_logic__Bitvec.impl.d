lib/logic/bitvec.ml: Array Bytes Char Format
