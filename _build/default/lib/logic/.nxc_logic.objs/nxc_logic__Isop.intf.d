lib/logic/isop.mli: Boolfunc Cover Truth_table
