lib/logic/espresso.mli: Cover Truth_table
