lib/logic/parse.ml: Array Boolfunc Buffer Bytes Cover Cube Format Hashtbl List Printf String Truth_table
