lib/logic/cover.ml: Array Cube Format List Stdlib
