lib/logic/minimize.mli: Boolfunc Cover Truth_table
