lib/logic/pcircuit.ml: Boolfunc Cover Fun List Minimize Truth_table
