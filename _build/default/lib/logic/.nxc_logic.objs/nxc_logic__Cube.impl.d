lib/logic/cube.ml: Array Format Hashtbl List Stdlib Sys
