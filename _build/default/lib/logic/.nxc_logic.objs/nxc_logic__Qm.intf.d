lib/logic/qm.mli: Boolfunc Cover Cube Truth_table
