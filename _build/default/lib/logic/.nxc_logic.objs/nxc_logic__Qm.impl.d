lib/logic/qm.ml: Array Boolfunc Cover Cube Hashtbl List Truth_table
