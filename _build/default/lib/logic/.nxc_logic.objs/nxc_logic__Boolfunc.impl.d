lib/logic/boolfunc.ml: Format Printf Truth_table
