lib/logic/bitvec.mli: Format
