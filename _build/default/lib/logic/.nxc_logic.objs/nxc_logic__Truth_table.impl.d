lib/logic/truth_table.ml: Array Bitvec Cover Format Fun Hashtbl List Stdlib
