lib/logic/affine.ml: Array Boolfunc Fun List Truth_table
