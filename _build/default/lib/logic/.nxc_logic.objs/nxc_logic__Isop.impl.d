lib/logic/isop.ml: Boolfunc Cover Cube List Truth_table
