lib/logic/bdd.mli: Cover Truth_table
