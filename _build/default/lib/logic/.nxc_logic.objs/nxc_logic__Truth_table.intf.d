lib/logic/truth_table.mli: Cover Format
