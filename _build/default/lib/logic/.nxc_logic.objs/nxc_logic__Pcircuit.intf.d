lib/logic/pcircuit.mli: Boolfunc Truth_table
