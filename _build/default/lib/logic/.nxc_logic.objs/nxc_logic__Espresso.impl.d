lib/logic/espresso.ml: Cover Cube List Truth_table
