lib/logic/minimize.ml: Boolfunc Cover Espresso Isop List Qm Truth_table
