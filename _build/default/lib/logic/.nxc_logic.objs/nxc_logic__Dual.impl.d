lib/logic/dual.ml: Boolfunc Cover Cube List Minimize Truth_table
