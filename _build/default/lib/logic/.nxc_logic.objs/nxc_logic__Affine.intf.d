lib/logic/affine.mli: Boolfunc Truth_table
