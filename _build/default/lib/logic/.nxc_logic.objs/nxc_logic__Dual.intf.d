lib/logic/dual.mli: Boolfunc Cover Truth_table
