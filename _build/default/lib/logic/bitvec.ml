type t = { len : int; data : Bytes.t }

let bytes_needed len = (len + 7) / 8

let create len init =
  if len < 0 then invalid_arg "Bitvec.create";
  { len; data = Bytes.make (bytes_needed len) (if init then '\xff' else '\x00') }

let length v = v.len

let check v i =
  if i < 0 || i >= v.len then invalid_arg "Bitvec: index out of range"

let get v i =
  check v i;
  Char.code (Bytes.unsafe_get v.data (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set v i b =
  check v i;
  let byte = i lsr 3 and bit = 1 lsl (i land 7) in
  let old = Char.code (Bytes.unsafe_get v.data byte) in
  let updated = if b then old lor bit else old land lnot bit in
  Bytes.unsafe_set v.data byte (Char.unsafe_chr (updated land 0xff))

let copy v = { v with data = Bytes.copy v.data }

(* Bits past [len] in the last byte are kept normalized to zero so that
   byte-level comparison and popcount are exact. *)
let normalize v =
  let rem = v.len land 7 in
  if rem <> 0 && v.len > 0 then begin
    let last = bytes_needed v.len - 1 in
    let m = (1 lsl rem) - 1 in
    Bytes.set v.data last
      (Char.chr (Char.code (Bytes.get v.data last) land m))
  end;
  v

let create len init = normalize (create len init)

let equal a b = a.len = b.len && Bytes.equal a.data b.data

let popcount_byte =
  let tbl = Array.make 256 0 in
  for i = 1 to 255 do
    tbl.(i) <- tbl.(i lsr 1) + (i land 1)
  done;
  fun c -> tbl.(Char.code c)

let popcount v =
  let acc = ref 0 in
  Bytes.iter (fun c -> acc := !acc + popcount_byte c) v.data;
  !acc

let is_all b v = popcount v = if b then v.len else 0

let init len f =
  let v = create len false in
  for i = 0 to len - 1 do
    if f i then set v i true
  done;
  v

let iteri f v =
  for i = 0 to v.len - 1 do
    f i (get v i)
  done

let fold_true f v acc =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    if get v i then acc := f i !acc
  done;
  !acc

let map2 f a b =
  if a.len <> b.len then invalid_arg "Bitvec.map2: length mismatch";
  init a.len (fun i -> f (get a i) (get b i))

let byte_op f a b =
  if a.len <> b.len then invalid_arg "Bitvec: length mismatch";
  let n = Bytes.length a.data in
  let data = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.unsafe_set data i
      (Char.unsafe_chr
         (f (Char.code (Bytes.unsafe_get a.data i))
            (Char.code (Bytes.unsafe_get b.data i))
          land 0xff))
  done;
  normalize { len = a.len; data }

let lnot v =
  let data = Bytes.map (fun c -> Char.chr (Char.code c lxor 0xff)) v.data in
  normalize { len = v.len; data }

let land_ = byte_op ( land )
let lor_ = byte_op ( lor )
let lxor_ = byte_op ( lxor )

let pp ppf v =
  for i = 0 to v.len - 1 do
    Format.pp_print_char ppf (if get v i then '1' else '0')
  done
