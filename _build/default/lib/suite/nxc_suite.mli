(** Benchmark function suite.

    Programmatically defined stand-ins for the PLA benchmarks used by
    the switching-lattice literature (see DESIGN.md for the
    substitution rationale): parities, majorities, symmetric
    rd53/rd73-style counter outputs, arithmetic slices, comparators and
    seeded random functions.  Definitions are exact by construction and
    span 2–9 inputs, the range where exact minimization and exhaustive
    lattice checking remain feasible. *)

type benchmark = {
  name : string;
  description : string;
  func : Nxc_logic.Boolfunc.t;
}

type multi = {
  multi_name : string;
  multi_description : string;
  outputs : Nxc_logic.Boolfunc.t list;  (** share one input space *)
}

val all : unit -> benchmark list
(** The full single-output suite, deterministic order. *)

val core : unit -> benchmark list
(** The subset used by the synthesis benches: small enough for exact
    minimization and exhaustive equivalence everywhere. *)

val d_reducible : unit -> benchmark list
(** Members constructed to be D-reducible (for experiment E5). *)

val multi_output : unit -> multi list
(** rd53, rd73, adders, multiplier — as output vectors. *)

val by_name : string -> benchmark option

val parity : int -> benchmark
val majority : int -> benchmark
(** [majority n] requires odd [n]. *)

val random_function : n:int -> seed:int -> density:float -> benchmark
