module L = Nxc_logic
module B = L.Boolfunc

type benchmark = { name : string; description : string; func : B.t }

type multi = {
  multi_name : string;
  multi_description : string;
  outputs : B.t list;
}

let popcount m =
  let rec go acc m = if m = 0 then acc else go (acc + (m land 1)) (m lsr 1) in
  go 0 m

let mk name description n f =
  { name; description; func = B.of_fun_int ~name n f }

let parity n =
  mk (Printf.sprintf "xor%d" n)
    (Printf.sprintf "parity of %d inputs" n)
    n
    (fun m -> popcount m land 1 = 1)

let majority n =
  if n land 1 = 0 then invalid_arg "Nxc_suite.majority: even arity";
  mk (Printf.sprintf "maj%d" n)
    (Printf.sprintf "majority of %d inputs" n)
    n
    (fun m -> 2 * popcount m > n)

let random_function ~n ~seed ~density =
  { name = Printf.sprintf "rnd%d_s%d" n seed;
    description =
      Printf.sprintf "seeded random function, %d inputs, density %.2f" n density;
    func =
      B.make
        ~name:(Printf.sprintf "rnd%d_s%d" n seed)
        (L.Truth_table.random_with_density n ~seed ~density) }

(* rdXY-style symmetric counter output: bit [b] of the input weight *)
let rd_output ~inputs ~bit =
  mk
    (Printf.sprintf "rd%d3_%d" inputs bit)
    (Printf.sprintf "bit %d of the ones-count of %d inputs" bit inputs)
    inputs
    (fun m -> (popcount m lsr bit) land 1 = 1)

(* two operand fields of [bits] bits each: low bits = a, high bits = b *)
let fields bits m = (m land ((1 lsl bits) - 1), m lsr bits)

let adder_output ~bits ~out =
  mk
    (Printf.sprintf "add%d_s%d" bits out)
    (Printf.sprintf "bit %d of a %d+%d-bit sum" out bits bits)
    (2 * bits)
    (fun m ->
      let a, b = fields bits m in
      ((a + b) lsr out) land 1 = 1)

let multiplier_output ~bits ~out =
  mk
    (Printf.sprintf "mul%d_p%d" bits out)
    (Printf.sprintf "bit %d of a %dx%d-bit product" out bits bits)
    (2 * bits)
    (fun m ->
      let a, b = fields bits m in
      ((a * b) lsr out) land 1 = 1)

let comparator bits =
  mk
    (Printf.sprintf "gt%d" bits)
    (Printf.sprintf "%d-bit a > b" bits)
    (2 * bits)
    (fun m ->
      let a, b = fields bits m in
      a > b)

let equality bits =
  mk
    (Printf.sprintf "eq%d" bits)
    (Printf.sprintf "%d-bit a = b" bits)
    (2 * bits)
    (fun m ->
      let a, b = fields bits m in
      a = b)

let mux k =
  (* k select lines, 2^k data lines *)
  let n = k + (1 lsl k) in
  mk
    (Printf.sprintf "mux%d" (1 lsl k))
    (Printf.sprintf "%d-way multiplexer" (1 lsl k))
    n
    (fun m ->
      let sel = m land ((1 lsl k) - 1) in
      (m lsr k) land (1 lsl sel) <> 0)

let one_hot n =
  mk
    (Printf.sprintf "onehot%d" n)
    (Printf.sprintf "exactly one of %d inputs" n)
    n
    (fun m -> popcount m = 1)

let interval_symmetric n lo hi =
  mk
    (Printf.sprintf "sym%d_%d%d" n lo hi)
    (Printf.sprintf "ones-count of %d inputs in [%d,%d]" n lo hi)
    n
    (fun m ->
      let w = popcount m in
      w >= lo && w <= hi)

let fig4 =
  { name = "fig4";
    description = "the paper's Fig. 4 lattice function";
    func =
      B.with_name "fig4"
        (L.Parse.expr ~n:6 "x1x2x3 + x1x2x5x6 + x2x3x4x5 + x4x5x6") }

let xnor2 =
  { name = "xnor2";
    description = "the paper's running example x1x2 + x1'x2'";
    func = B.with_name "xnor2" (L.Parse.expr "x1x2 + x1'x2'") }

(* D-reducible constructions: a core function confined to an affine
   subspace (every on-set point satisfies one or two parity checks) *)
let dred_masked ~name ~core_bits ~checks =
  let n = core_bits + checks in
  mk name
    (Printf.sprintf "%d-input function confined by %d parity checks" n checks)
    n
    (fun m ->
      (* parity checks: x_{core_bits+j} must equal the parity of the
         low core bits shifted by j *)
      let core = m land ((1 lsl core_bits) - 1) in
      let ok = ref true in
      for j = 0 to checks - 1 do
        let expected = (popcount (core lsr j) land 1) = 1 in
        let got = (m lsr (core_bits + j)) land 1 = 1 in
        if expected <> got then ok := false
      done;
      !ok && 2 * popcount core > core_bits)

(* product of disjoint small parities: the on-set is exactly an affine
   space, where the constraint decomposition shines *)
let affine_product ~name ~groups =
  let n = List.fold_left ( + ) 0 groups in
  mk name
    (Printf.sprintf "product of %d disjoint parities over %d inputs"
       (List.length groups) n)
    n
    (fun m ->
      let rec go m = function
        | [] -> true
        | g :: rest ->
            popcount (m land ((1 lsl g) - 1)) land 1 = 1 && go (m lsr g) rest
      in
      go m groups)

(* a small core function gated by disjoint parity checks *)
let gated_core ~name ~core_bits ~groups ~core =
  let n = core_bits + List.fold_left ( + ) 0 groups in
  mk name
    (Printf.sprintf "%d-input core gated by %d parities" core_bits
       (List.length groups))
    n
    (fun m ->
      let rec checks m = function
        | [] -> true
        | g :: rest ->
            popcount (m land ((1 lsl g) - 1)) land 1 = 1 && checks (m lsr g) rest
      in
      core (m land ((1 lsl core_bits) - 1)) && checks (m lsr core_bits) groups)

let d_reducible () =
  [ xnor2;
    parity 3;
    parity 5;
    affine_product ~name:"affine6" ~groups:[ 3; 3 ];
    affine_product ~name:"affine8" ~groups:[ 2; 2; 2; 2 ];
    gated_core ~name:"gated_and" ~core_bits:2 ~groups:[ 2; 2 ]
      ~core:(fun c -> c = 3);
    gated_core ~name:"gated_maj3" ~core_bits:3 ~groups:[ 3 ] ~core:(fun c ->
        popcount c >= 2);
    dred_masked ~name:"dmaj4p1" ~core_bits:4 ~checks:1;
    dred_masked ~name:"dmaj4p2" ~core_bits:4 ~checks:2 ]

let core () =
  [ xnor2;
    parity 2;
    parity 3;
    parity 4;
    parity 5;
    majority 3;
    majority 5;
    fig4;
    rd_output ~inputs:5 ~bit:0;
    rd_output ~inputs:5 ~bit:1;
    rd_output ~inputs:5 ~bit:2;
    adder_output ~bits:2 ~out:0;
    adder_output ~bits:2 ~out:1;
    adder_output ~bits:2 ~out:2;
    multiplier_output ~bits:2 ~out:1;
    multiplier_output ~bits:2 ~out:2;
    comparator 2;
    equality 2;
    mux 1;
    one_hot 4;
    interval_symmetric 5 2 3;
    random_function ~n:4 ~seed:1 ~density:0.3;
    random_function ~n:5 ~seed:2 ~density:0.25;
    random_function ~n:5 ~seed:3 ~density:0.5 ]

let all () =
  core ()
  @ [ parity 6;
      parity 7;
      majority 7;
      rd_output ~inputs:7 ~bit:0;
      rd_output ~inputs:7 ~bit:1;
      rd_output ~inputs:7 ~bit:2;
      adder_output ~bits:3 ~out:0;
      adder_output ~bits:3 ~out:1;
      adder_output ~bits:3 ~out:3;
      comparator 3;
      equality 3;
      mux 2;
      one_hot 6;
      interval_symmetric 7 3 4;
      random_function ~n:6 ~seed:4 ~density:0.3;
      random_function ~n:7 ~seed:5 ~density:0.2;
      random_function ~n:8 ~seed:6 ~density:0.15 ]
  @ List.filter
      (fun b -> not (List.exists (fun c -> c.name = b.name) (core ())))
      (d_reducible ())

let multi_output () =
  [ { multi_name = "rd53";
      multi_description = "5-input ones-counter (3 output bits)";
      outputs =
        List.map (fun b -> (rd_output ~inputs:5 ~bit:b).func) [ 0; 1; 2 ] };
    { multi_name = "rd73";
      multi_description = "7-input ones-counter (3 output bits)";
      outputs =
        List.map (fun b -> (rd_output ~inputs:7 ~bit:b).func) [ 0; 1; 2 ] };
    { multi_name = "add2";
      multi_description = "2+2-bit adder (3 output bits)";
      outputs =
        List.map (fun o -> (adder_output ~bits:2 ~out:o).func) [ 0; 1; 2 ] };
    { multi_name = "mul2";
      multi_description = "2x2-bit multiplier (4 output bits)";
      outputs =
        List.map (fun o -> (multiplier_output ~bits:2 ~out:o).func)
          [ 0; 1; 2; 3 ] } ]

let by_name name = List.find_opt (fun b -> b.name = name) (all ())
