(** Altun–Riedel lattice synthesis (DAC 2010, IEEE TC 2012).

    Given SOP covers of a target [f] with products [P1..Pc] and of its
    dual [f{^D}] with products [Q1..Qr], the synthesized lattice has
    [r] rows and [c] columns — the size formula of Fig. 5 — and site
    [(i, j)] carries any literal shared by [Pj] and [Qi].  The sharing
    lemma (see {!Nxc_logic.Dual.check_sharing}) guarantees such a
    literal exists.  The lattice computes [f] top-to-bottom and [f{^D}]
    left-to-right.

    Constant functions degenerate to a single constant site. *)

val synthesize : ?method_:Nxc_logic.Minimize.method_ -> Nxc_logic.Boolfunc.t -> Lattice.t
(** Minimize [f] and [f{^D}] and build the lattice. *)

val synthesize_from_covers :
  n:int -> f_cover:Nxc_logic.Cover.t -> dual_cover:Nxc_logic.Cover.t -> Lattice.t
(** Build from explicit covers.  Raises [Invalid_argument] when some
    product pair shares no literal (i.e. the covers are not a
    function/dual pair) or when a cover is degenerate (use
    {!synthesize} for constants). *)

val size_formula :
  ?method_:Nxc_logic.Minimize.method_ -> Nxc_logic.Boolfunc.t -> int * int
(** [(rows, cols)] = (products of f{^D}, products of f): Fig. 5 without
    building the lattice. *)

val paper_example : unit -> Nxc_logic.Boolfunc.t * Lattice.t
(** The paper's Fig. 4: the 3x2 lattice with columns [(x1,x2,x3)] and
    [(x4,x5,x6)], whose top-to-bottom paths realize
    [f = x1x2x3 + x1x2x5x6 + x2x3x4x5 + x4x5x6]. *)
