module Cube = Nxc_logic.Cube
module Cover = Nxc_logic.Cover

let pad_to_rows l h =
  let r = Lattice.rows l and c = Lattice.cols l in
  if h < r then invalid_arg "Compose.pad_to_rows: shrinking";
  if h = r then l
  else
    let grid = Lattice.sites l in
    let extra = Array.init (h - r) (fun _ -> Array.make c Lattice.One) in
    Lattice.make ~n_vars:(Lattice.n_vars l) (Array.append grid extra)

let pad_to_cols l w =
  let c = Lattice.cols l in
  if w < c then invalid_arg "Compose.pad_to_cols: shrinking";
  if w = c then l
  else
    let grid = Lattice.sites l in
    let padded =
      Array.map (fun row -> Array.append row (Array.make (w - c) Lattice.Zero)) grid
    in
    Lattice.make ~n_vars:(Lattice.n_vars l) padded

let check_arity a b =
  if Lattice.n_vars a <> Lattice.n_vars b then
    invalid_arg "Compose: variable-count mismatch"

let disjunction a b =
  check_arity a b;
  let h = max (Lattice.rows a) (Lattice.rows b) in
  let a = pad_to_rows a h and b = pad_to_rows b h in
  let ga = Lattice.sites a and gb = Lattice.sites b in
  let sites =
    Array.init h (fun r ->
        Array.concat [ ga.(r); [| Lattice.Zero |]; gb.(r) ])
  in
  Lattice.make ~n_vars:(Lattice.n_vars a) sites

let conjunction a b =
  check_arity a b;
  let w = max (Lattice.cols a) (Lattice.cols b) in
  let a = pad_to_cols a w and b = pad_to_cols b w in
  let sites =
    Array.concat
      [ Lattice.sites a; [| Array.make w Lattice.One |]; Lattice.sites b ]
  in
  Lattice.make ~n_vars:(Lattice.n_vars a) sites

let reduce_list name op = function
  | [] -> invalid_arg name
  | l :: rest -> List.fold_left op l rest

let disjunction_list ls = reduce_list "Compose.disjunction_list: empty" disjunction ls
let conjunction_list ls = reduce_list "Compose.conjunction_list: empty" conjunction ls

let of_literal n v p = Lattice.make ~n_vars:n [| [| Lattice.Lit (v, p) |] |]

let of_const n b =
  Lattice.make ~n_vars:n [| [| (if b then Lattice.One else Lattice.Zero) |] |]

let of_cube n c =
  match Cube.literals c with
  | [] -> of_const n true
  | lits ->
      let sites =
        Array.of_list
          (List.map (fun (v, p) -> [| Lattice.Lit (v, p) |]) lits)
      in
      Lattice.make ~n_vars:n sites

let of_cover n f =
  match Cover.cubes f with
  | [] -> of_const n false
  | cubes -> disjunction_list (List.map (of_cube n) cubes)
