(** Lattice synthesis through P-circuit decomposition
    (Section III.B.1; Bernasconi, Ciriani, Frontini, Liberali, Trucco,
    Villa 2016).

    [f = lit(xi=p) f_eq + lit(xi<>p) f_neq + f_int] is mapped to

    {[ OR( AND(L(lit), L(f_eq)), AND(L(lit'), L(f_neq)), L(f_int) ) ]}

    where the component lattices come from {!Altun_riedel} and the
    AND/OR composition from {!Compose}.  The components depend on one
    variable fewer than [f] and have smaller on-sets, so the composed
    lattice is often smaller than direct synthesis — the expectation the
    paper reports as experimentally confirmed. *)

val synthesize_with :
  ?strategy:Nxc_logic.Pcircuit.strategy ->
  var:int ->
  pol:bool ->
  Nxc_logic.Boolfunc.t ->
  Lattice.t
(** Decompose around the given variable/polarity and compose. *)

val synthesize :
  ?strategy:Nxc_logic.Pcircuit.strategy -> Nxc_logic.Boolfunc.t -> Lattice.t
(** Try every (var, pol) choice and keep the smallest composed
    lattice. *)

val synthesize_recursive :
  ?strategy:Nxc_logic.Pcircuit.strategy -> ?depth:int ->
  Nxc_logic.Boolfunc.t -> Lattice.t
(** Recursive P-circuits: the decomposition's components are themselves
    decomposed (up to [depth] levels, default 2) when that shrinks
    their lattices — the natural extension of Bernasconi et al.'s
    scheme.  Every branch falls back to direct Altun–Riedel synthesis
    when decomposition does not pay. *)

val best_of : Nxc_logic.Boolfunc.t -> Lattice.t
(** The smaller of direct Altun–Riedel synthesis and the best
    decomposition-based lattice — the flow evaluated in the paper. *)
