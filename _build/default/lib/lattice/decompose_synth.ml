module L = Nxc_logic
module Tt = L.Truth_table

(* Lattice of one decomposition branch [lit AND component]; [None] when
   the component is constant 0 (the branch vanishes). *)
let branch lit component =
  match Tt.is_const component with
  | Some false -> None
  | Some true -> Some lit
  | None ->
      let comp_lattice =
        Altun_riedel.synthesize (L.Boolfunc.make component)
      in
      Some (Compose.conjunction lit comp_lattice)

let synthesize_with ?strategy ~var ~pol f =
  let n = L.Boolfunc.n_vars f in
  match L.Boolfunc.is_const f with
  | Some b -> Compose.of_const n b
  | None ->
      let d = L.Pcircuit.decompose ?strategy ~var ~pol f in
      let lit_eq =
        Compose.of_literal n var (if pol then L.Cube.Pos else L.Cube.Neg)
      in
      let lit_neq =
        Compose.of_literal n var (if pol then L.Cube.Neg else L.Cube.Pos)
      in
      let branches =
        List.filter_map Fun.id
          [ branch lit_eq d.L.Pcircuit.f_eq;
            branch lit_neq d.L.Pcircuit.f_neq;
            (match Tt.is_const d.L.Pcircuit.f_int with
            | Some false -> None
            | Some true -> Some (Compose.of_const n true)
            | None ->
                Some (Altun_riedel.synthesize (L.Boolfunc.make d.L.Pcircuit.f_int)))
          ]
      in
      (match branches with
      | [] -> Compose.of_const n false
      | bs -> Compose.disjunction_list bs)

let synthesize ?strategy f =
  let n = L.Boolfunc.n_vars f in
  if n = 0 then Compose.of_const 1 (L.Boolfunc.eval_int f 0)
  else
    let candidates =
      List.concat_map
        (fun var -> [ (var, false); (var, true) ])
        (List.init n Fun.id)
    in
    let lattices =
      List.map (fun (var, pol) -> synthesize_with ?strategy ~var ~pol f) candidates
    in
    List.fold_left
      (fun best l -> if Lattice.area l < Lattice.area best then l else best)
      (List.hd lattices) (List.tl lattices)

let best_of f =
  let direct = Altun_riedel.synthesize f in
  let decomposed = synthesize f in
  if Lattice.area decomposed < Lattice.area direct then decomposed else direct

(* Recursive variant: component lattices may themselves come from a
   (depth-limited) decomposition when that is smaller. *)
let rec synth_component ?strategy ~depth component =
  let f = L.Boolfunc.make component in
  let direct = Altun_riedel.synthesize f in
  if depth <= 0 then direct
  else
    let dec = synthesize_at ?strategy ~depth f in
    if Lattice.area dec < Lattice.area direct then dec else direct

and synthesize_at ?strategy ~depth f =
  let n = L.Boolfunc.n_vars f in
  match L.Boolfunc.is_const f with
  | Some b -> Compose.of_const (max 1 n) b
  | None ->
      let candidates =
        List.concat_map
          (fun var -> [ (var, false); (var, true) ])
          (List.init n Fun.id)
      in
      let build (var, pol) =
        let d = L.Pcircuit.decompose ?strategy ~var ~pol f in
        let lit_eq =
          Compose.of_literal n var (if pol then L.Cube.Pos else L.Cube.Neg)
        in
        let lit_neq =
          Compose.of_literal n var (if pol then L.Cube.Neg else L.Cube.Pos)
        in
        let part lit component =
          match Tt.is_const component with
          | Some false -> None
          | Some true -> Some lit
          | None ->
              Some
                (Compose.conjunction lit
                   (synth_component ?strategy ~depth:(depth - 1) component))
        in
        let branches =
          List.filter_map Fun.id
            [ part lit_eq d.L.Pcircuit.f_eq;
              part lit_neq d.L.Pcircuit.f_neq;
              (match Tt.is_const d.L.Pcircuit.f_int with
              | Some false -> None
              | Some true -> Some (Compose.of_const n true)
              | None ->
                  Some
                    (synth_component ?strategy ~depth:(depth - 1)
                       d.L.Pcircuit.f_int)) ]
        in
        match branches with
        | [] -> Compose.of_const n false
        | bs -> Compose.disjunction_list bs
      in
      let lattices = List.map build candidates in
      List.fold_left
        (fun best l -> if Lattice.area l < Lattice.area best then l else best)
        (List.hd lattices) (List.tl lattices)

let synthesize_recursive ?strategy ?(depth = 2) f =
  synthesize_at ?strategy ~depth f
