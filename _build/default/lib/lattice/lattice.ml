module Cube = Nxc_logic.Cube
module Boolfunc = Nxc_logic.Boolfunc

type site = Zero | One | Lit of int * Cube.polarity

type t = { n : int; rows : int; cols : int; sites : site array array }

let make ~n_vars sites =
  let rows = Array.length sites in
  if rows = 0 then invalid_arg "Lattice.make: no rows";
  let cols = Array.length sites.(0) in
  if cols = 0 then invalid_arg "Lattice.make: empty rows";
  Array.iter
    (fun row ->
      if Array.length row <> cols then
        invalid_arg "Lattice.make: ragged rows")
    sites;
  Array.iter
    (Array.iter (function
      | Lit (v, _) when v < 0 || v >= n_vars ->
          invalid_arg "Lattice.make: literal out of range"
      | Zero | One | Lit _ -> ()))
    sites;
  { n = n_vars; rows; cols; sites = Array.map Array.copy sites }

let n_vars l = l.n
let rows l = l.rows
let cols l = l.cols
let area l = l.rows * l.cols

let site l r c =
  if r < 0 || r >= l.rows || c < 0 || c >= l.cols then
    invalid_arg "Lattice.site: out of range";
  l.sites.(r).(c)

let sites l = Array.map Array.copy l.sites

let map f l =
  { l with sites = Array.mapi (fun r row -> Array.mapi (fun c s -> f r c s) row) l.sites }

let site_conducts s m =
  match s with
  | Zero -> false
  | One -> true
  | Lit (v, Cube.Pos) -> m land (1 lsl v) <> 0
  | Lit (v, Cube.Neg) -> m land (1 lsl v) = 0

(* Connectivity by BFS over conducting sites.  [starts] seeds the
   frontier; [finished] decides success. *)
let connected l m ~starts ~finished =
  let on = Array.make (l.rows * l.cols) false in
  for r = 0 to l.rows - 1 do
    for c = 0 to l.cols - 1 do
      on.((r * l.cols) + c) <- site_conducts l.sites.(r).(c) m
    done
  done;
  let visited = Array.make (l.rows * l.cols) false in
  let queue = Queue.create () in
  List.iter
    (fun (r, c) ->
      let i = (r * l.cols) + c in
      if on.(i) && not visited.(i) then begin
        visited.(i) <- true;
        Queue.add (r, c) queue
      end)
    starts;
  let result = ref false in
  while (not !result) && not (Queue.is_empty queue) do
    let r, c = Queue.pop queue in
    if finished (r, c) then result := true
    else
      List.iter
        (fun (r', c') ->
          if r' >= 0 && r' < l.rows && c' >= 0 && c' < l.cols then begin
            let i = (r' * l.cols) + c' in
            if on.(i) && not visited.(i) then begin
              visited.(i) <- true;
              Queue.add (r', c') queue
            end
          end)
        [ (r - 1, c); (r + 1, c); (r, c - 1); (r, c + 1) ]
  done;
  !result

let eval_int l m =
  connected l m
    ~starts:(List.init l.cols (fun c -> (0, c)))
    ~finished:(fun (r, _) -> r = l.rows - 1)

let eval l x =
  let m = ref 0 in
  Array.iteri (fun i b -> if b then m := !m lor (1 lsl i)) x;
  eval_int l !m

let eval_lr l m =
  connected l m
    ~starts:(List.init l.rows (fun r -> (r, 0)))
    ~finished:(fun (_, c) -> c = l.cols - 1)

let to_function ?(name = "lattice") l =
  Boolfunc.of_fun_int ~name l.n (eval_int l)

let conducting_sites l m =
  let acc = ref [] in
  for r = l.rows - 1 downto 0 do
    for c = l.cols - 1 downto 0 do
      if site_conducts l.sites.(r).(c) m then acc := (r, c) :: !acc
    done
  done;
  !acc

let paths_exist_through l m (r0, c0) =
  site_conducts l.sites.(r0).(c0) m
  && connected l m
       ~starts:(List.init l.cols (fun c -> (0, c)))
       ~finished:(fun (r, c) -> r = r0 && c = c0)
  && connected l m ~starts:[ (r0, c0) ] ~finished:(fun (r, _) -> r = l.rows - 1)

let transpose l =
  { l with
    rows = l.cols;
    cols = l.rows;
    sites = Array.init l.cols (fun c -> Array.init l.rows (fun r -> l.sites.(r).(c))) }

let site_to_string = function
  | Zero -> "0"
  | One -> "1"
  | Lit (v, Cube.Pos) -> Printf.sprintf "x%d" (v + 1)
  | Lit (v, Cube.Neg) -> Printf.sprintf "x%d'" (v + 1)

let pp ppf l =
  let width =
    Array.fold_left
      (fun acc row ->
        Array.fold_left
          (fun acc s -> max acc (String.length (site_to_string s)))
          acc row)
      1 l.sites
  in
  Array.iteri
    (fun r row ->
      Format.pp_print_string ppf "| ";
      Array.iter
        (fun s ->
          let str = site_to_string s in
          Format.fprintf ppf "%s%s " str
            (String.make (width - String.length str) ' '))
        row;
      Format.pp_print_string ppf "|";
      if r < l.rows - 1 then Format.pp_print_newline ppf ())
    l.sites

let to_string l = Format.asprintf "%a" pp l
