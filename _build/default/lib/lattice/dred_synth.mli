(** Lattice synthesis of D-reducible functions (Section III.B.2;
    Bernasconi, Ciriani, Frontini, Trucco 2016).

    When [f = chi_A * f_A] for an affine space [A] strictly smaller than
    the Boolean cube, the lattices for [chi_A] (a conjunction of parity
    checks, each synthesized with {!Altun_riedel}) and for the
    projection [f_A] are built independently and composed with a
    padding row of 1s. *)

val synthesize : Nxc_logic.Boolfunc.t -> Lattice.t option
(** [None] when [f] is not D-reducible (or constant 0). *)

val chi_lattice : n:int -> Nxc_logic.Affine.space -> Lattice.t
(** Conjunction of the per-constraint parity lattices. *)

val best_of : Nxc_logic.Boolfunc.t -> Lattice.t
(** The smaller of direct Altun–Riedel synthesis and the D-reduction
    based lattice when one exists. *)
