(** Conduction-path analysis.

    A lattice computes the OR over its top-to-bottom paths of the AND
    of the path's literals (Fig. 4).  This module makes that reading
    executable: it enumerates the simple top-to-bottom paths, turns
    each into a product cube, and rebuilds the SOP the lattice
    implements — an independent second semantics used to cross-check
    the connectivity evaluator, and a debugging aid that shows {e why}
    a lattice computes what it computes. *)

val path_products : ?max_paths:int -> Lattice.t -> Nxc_logic.Cube.t list
(** Products of the simple top-to-bottom paths, single-cube-irredundant
    (absorbed paths dropped).  Paths through a constant-0 site or
    carrying contradictory literals are dropped; constant-1 sites
    contribute no literal.  Stops with [Failure] after [max_paths]
    simple paths (default 100_000) to bound the exponential worst
    case. *)

val to_cover : ?max_paths:int -> Lattice.t -> Nxc_logic.Cover.t
(** The SOP the lattice implements, by path enumeration. *)

val consistent : ?max_paths:int -> Lattice.t -> bool
(** Path semantics equals connectivity semantics — the Altun–Riedel
    reading of the fabric.  Checked by the test suite across the
    synthesizers. *)
