module L = Nxc_logic

let drop_row lattice r =
  if Lattice.rows lattice <= 1 then None
  else
    let sites = Lattice.sites lattice in
    let kept =
      Array.of_list
        (List.filteri (fun i _ -> i <> r) (Array.to_list sites))
    in
    Some (Lattice.make ~n_vars:(Lattice.n_vars lattice) kept)

let drop_col lattice c =
  if Lattice.cols lattice <= 1 then None
  else
    let sites = Lattice.sites lattice in
    let kept =
      Array.map
        (fun row ->
          Array.of_list
            (List.filteri (fun j _ -> j <> c) (Array.to_list row)))
        sites
    in
    Some (Lattice.make ~n_vars:(Lattice.n_vars lattice) kept)

let equivalent = Checker.equivalent

(* one pass: first try deletions (big wins), then site weakenings *)
let improve lattice f =
  let try_rows l =
    let rec go r l =
      if r >= Lattice.rows l then l
      else
        match drop_row l r with
        | Some l' when equivalent l' f -> go r l'
        | Some _ | None -> go (r + 1) l
    in
    go 0 l
  in
  let try_cols l =
    let rec go c l =
      if c >= Lattice.cols l then l
      else
        match drop_col l c with
        | Some l' when equivalent l' f -> go c l'
        | Some _ | None -> go (c + 1) l
    in
    go 0 l
  in
  let weaken l =
    let result = ref l in
    for r = 0 to Lattice.rows l - 1 do
      for c = 0 to Lattice.cols l - 1 do
        match Lattice.site !result r c with
        | Lattice.Zero | Lattice.One -> ()
        | Lattice.Lit _ ->
            (* a literal site costs a programmable input; a constant is
               free fabric.  Try both constants. *)
            let replace value =
              Lattice.map
                (fun r' c' s -> if r' = r && c' = c then value else s)
                !result
            in
            let zero = replace Lattice.Zero in
            if equivalent zero f then result := zero
            else
              let one = replace Lattice.One in
              if equivalent one f then result := one
      done
    done;
    !result
  in
  weaken (try_cols (try_rows lattice))

let trim lattice f =
  let rec fixpoint l =
    let l' = improve l f in
    if Lattice.area l' < Lattice.area l then fixpoint l' else l'
  in
  fixpoint lattice

let trim_stats lattice f =
  let trimmed = trim lattice f in
  (trimmed, Lattice.area lattice - Lattice.area trimmed)
