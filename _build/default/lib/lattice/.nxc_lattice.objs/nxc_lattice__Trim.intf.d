lib/lattice/trim.mli: Lattice Nxc_logic
