lib/lattice/lattice.mli: Format Nxc_logic
