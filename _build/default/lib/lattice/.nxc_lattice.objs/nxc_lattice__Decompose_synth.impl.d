lib/lattice/decompose_synth.ml: Altun_riedel Compose Fun Lattice List Nxc_logic
