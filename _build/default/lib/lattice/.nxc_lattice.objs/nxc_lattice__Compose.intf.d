lib/lattice/compose.mli: Lattice Nxc_logic
