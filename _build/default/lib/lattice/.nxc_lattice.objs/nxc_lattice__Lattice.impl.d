lib/lattice/lattice.ml: Array Format List Nxc_logic Printf Queue String
