lib/lattice/trim.ml: Array Checker Lattice List Nxc_logic
