lib/lattice/altun_riedel.ml: Array Lattice Nxc_logic
