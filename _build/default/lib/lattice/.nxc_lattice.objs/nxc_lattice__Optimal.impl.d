lib/lattice/optimal.ml: Array Checker Compose Fun Lattice List Nxc_logic
