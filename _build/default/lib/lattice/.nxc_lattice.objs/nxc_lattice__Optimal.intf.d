lib/lattice/optimal.mli: Lattice Nxc_logic
