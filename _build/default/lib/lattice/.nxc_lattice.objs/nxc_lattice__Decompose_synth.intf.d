lib/lattice/decompose_synth.mli: Lattice Nxc_logic
