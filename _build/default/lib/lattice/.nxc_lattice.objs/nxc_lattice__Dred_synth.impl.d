lib/lattice/dred_synth.ml: Altun_riedel Array Compose Lattice List Nxc_logic
