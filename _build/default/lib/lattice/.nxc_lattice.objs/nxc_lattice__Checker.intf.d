lib/lattice/checker.mli: Lattice Nxc_logic
