lib/lattice/paths.ml: Array Lattice List Nxc_logic
