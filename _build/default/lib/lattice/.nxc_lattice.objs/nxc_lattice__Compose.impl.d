lib/lattice/compose.ml: Array Lattice List Nxc_logic
