lib/lattice/altun_riedel.mli: Lattice Nxc_logic
