lib/lattice/checker.ml: Lattice Nxc_logic
