lib/lattice/dred_synth.mli: Lattice Nxc_logic
