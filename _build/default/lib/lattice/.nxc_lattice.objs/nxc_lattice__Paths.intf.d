lib/lattice/paths.mli: Lattice Nxc_logic
