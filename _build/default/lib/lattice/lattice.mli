(** Four-terminal switch lattices.

    A lattice is a rectangular grid of four-terminal switches (Fig. 1 of
    the paper).  Each site is controlled by a literal or a constant;
    when its control evaluates to 1 the switch connects to all four
    neighbours, when 0 it isolates.  The lattice computes 1 on an input
    assignment iff a path of conducting sites connects the top edge to
    the bottom edge (Fig. 4).  Left-to-right connectivity computes the
    dual function for Altun–Riedel lattices — exposed here as
    {!eval_lr}. *)

type site =
  | Zero  (** permanently open switch *)
  | One   (** permanently closed switch *)
  | Lit of int * Nxc_logic.Cube.polarity
      (** switch controlled by a literal of variable [i] (0-based) *)

type t

val make : n_vars:int -> site array array -> t
(** [make ~n_vars sites] with [sites] in row-major order; all rows must
    have equal positive length.  Raises [Invalid_argument] otherwise. *)

val n_vars : t -> int

val rows : t -> int

val cols : t -> int

val area : t -> int
(** [rows * cols], the paper's size metric. *)

val site : t -> int -> int -> site
(** [site l r c]; raises [Invalid_argument] out of range. *)

val sites : t -> site array array
(** A copy of the grid. *)

val map : (int -> int -> site -> site) -> t -> t

val site_conducts : site -> int -> bool
(** Whether a site conducts under the assignment encoded in the int. *)

val eval_int : t -> int -> bool
(** Top-to-bottom connectivity under an assignment. *)

val eval : t -> bool array -> bool

val eval_lr : t -> int -> bool
(** Left-to-right connectivity — for lattices built by
    {!Altun_riedel.synthesize} this computes the dual function. *)

val to_function : ?name:string -> t -> Nxc_logic.Boolfunc.t

val conducting_sites : t -> int -> (int * int) list
(** Sites that conduct under an assignment (row, col). *)

val paths_exist_through : t -> int -> (int * int) -> bool
(** Whether some top-bottom conducting path passes through the given
    site under the assignment. *)

val transpose : t -> t

val pp : Format.formatter -> t -> unit
(** Grid rendering, one row per line, e.g.
    {v
    | x1  x2' 1  |
    | x3  0   x1 |
    v} *)

val to_string : t -> string
