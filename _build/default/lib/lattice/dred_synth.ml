module L = Nxc_logic
module Tt = L.Truth_table

let chi_lattice ~n (space : L.Affine.space) =
  match space.L.Affine.constraints with
  | [] -> Compose.of_const n true
  | cs ->
      (* per-constraint conjunction: each parity check is a small AR
         lattice, AND-composed with padding rows.  For multi-check
         spaces this avoids the product blow-up of synthesizing the
         whole characteristic function at once; for single checks the
         direct synthesis is the same thing, so take the smaller. *)
      let composed =
        Compose.conjunction_list
          (List.map
             (fun c ->
               let f = L.Boolfunc.make (L.Affine.constraint_function n c) in
               Altun_riedel.synthesize f)
             cs)
      in
      let direct = Altun_riedel.synthesize (L.Boolfunc.make (L.Affine.chi space)) in
      if Lattice.area direct < Lattice.area composed then direct else composed

let synthesize f =
  let n = L.Boolfunc.n_vars f in
  match L.Affine.d_reduction f with
  | None -> None
  | Some r ->
      let space = r.L.Affine.space in
      let chi = chi_lattice ~n space in
      let projection_lattice =
        match Tt.is_const r.L.Affine.projection with
        | Some true -> None (* chi alone is the function *)
        | Some false -> Some (Compose.of_const n false)
        | None ->
            let map = Array.of_list space.L.Affine.free_vars in
            let lifted = Tt.lift r.L.Affine.projection n map in
            Some (Altun_riedel.synthesize (L.Boolfunc.make lifted))
      in
      (match projection_lattice with
      | None -> Some chi
      | Some pl -> Some (Compose.conjunction chi pl))

let best_of f =
  let direct = Altun_riedel.synthesize f in
  match synthesize f with
  | Some l when Lattice.area l < Lattice.area direct -> l
  | Some _ | None -> direct
