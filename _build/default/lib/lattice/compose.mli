(** Function-preserving lattice composition (Section III.B.1).

    The paper recalls from Altun–Riedel that, given lattices for [f] and
    [g], the disjunction [f + g] is obtained by placing them side by
    side separated by a padding column of 0s, and the conjunction
    [f * g] by stacking them separated by a padding row of 1s.  Height /
    width mismatches are equalized by the two padding primitives, both
    of which preserve the computed function for {e any} lattice:

    - appending all-1 rows at the bottom (paths extend through them);
    - appending all-0 columns at the right (never conducting). *)

val pad_to_rows : Lattice.t -> int -> Lattice.t
(** Append all-[One] rows at the bottom up to the requested height. *)

val pad_to_cols : Lattice.t -> int -> Lattice.t
(** Append all-[Zero] columns at the right up to the requested width. *)

val disjunction : Lattice.t -> Lattice.t -> Lattice.t
(** OR of two lattices over the same variable set.
    Size: [max r1 r2] x [c1 + c2 + 1]. *)

val conjunction : Lattice.t -> Lattice.t -> Lattice.t
(** AND of two lattices over the same variable set.
    Size: [r1 + r2 + 1] x [max c1 c2]. *)

val disjunction_list : Lattice.t list -> Lattice.t
(** OR of one or more lattices; raises [Invalid_argument] on []. *)

val conjunction_list : Lattice.t list -> Lattice.t

val of_literal : int -> int -> Nxc_logic.Cube.polarity -> Lattice.t
(** [of_literal n v p]: the 1x1 lattice computing a literal. *)

val of_const : int -> bool -> Lattice.t

val of_cube : int -> Nxc_logic.Cube.t -> Lattice.t
(** Vertical chain of the cube's literals (a single column). *)

val of_cover : int -> Nxc_logic.Cover.t -> Lattice.t
(** Naive SOP lattice: disjunction of cube columns — the baseline the
    Altun–Riedel construction improves on. *)
