(** Equivalence checking between lattices and functions. *)

val equivalent : Lattice.t -> Nxc_logic.Boolfunc.t -> bool
(** Exhaustive check over all [2{^n}] assignments. *)

val counterexample : Lattice.t -> Nxc_logic.Boolfunc.t -> int option
(** A distinguishing minterm, if any. *)

val computes_dual_lr : Lattice.t -> Nxc_logic.Boolfunc.t -> bool
(** Whether left-to-right connectivity computes [f{^D}] — the duality
    property of Altun–Riedel lattices. *)
