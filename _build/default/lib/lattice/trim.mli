(** Post-synthesis lattice trimming.

    The Altun–Riedel construction is optimal for its row/column product
    structure, but composed lattices (decomposition, D-reduction,
    padding) accumulate slack: whole rows or columns whose removal
    leaves the computed function unchanged, and literal sites that can
    be weakened to constants.  This pass greedily removes such slack,
    re-checking functional equivalence after every candidate edit. *)

val drop_row : Lattice.t -> int -> Lattice.t option
(** [None] when the lattice has a single row. *)

val drop_col : Lattice.t -> int -> Lattice.t option

val trim : Lattice.t -> Nxc_logic.Boolfunc.t -> Lattice.t
(** Greedy fixpoint of function-preserving row/column deletions and
    site-to-constant weakenings.  The result is equivalent to [f]
    (assuming the input was) and never larger. *)

val trim_stats : Lattice.t -> Nxc_logic.Boolfunc.t -> Lattice.t * int
(** Trimmed lattice and the number of sites removed. *)
