(** WP3 extension: crossbar memory array.

    A word-addressable memory over a crossbar: each row stores one
    word, crosspoint state is the stored bit.  Fabrication defects make
    cells unwritable (stuck at a value); the module implements the
    classic spare-row redundancy repair: rows containing defective
    cells are remapped to spare rows at configuration time — the memory
    counterpart of the defect-unaware flow. *)

type t

val create :
  ?chip:Nxc_reliability.Defect.t -> words:int -> width:int -> spares:int -> unit -> t
(** A memory with [words] addressable rows plus [spares] spare rows on
    a physical crossbar of [words + spares] rows.  When [chip] is given
    it must be at least that large; defective rows are remapped to
    spares eagerly.  Raises [Invalid_argument] if more rows are
    defective than spares can absorb. *)

val words : t -> int
val width : t -> int

val repaired_rows : t -> int
(** How many logical rows live on spares. *)

val write : t -> addr:int -> bool array -> unit

val read : t -> addr:int -> bool array
(** Reads reflect cell defects that remained (none, if repair
    succeeded). *)

val defect_free : t -> bool
(** All logical rows are mapped to fully functional physical rows. *)
