module L = Nxc_logic
module Lt = Nxc_lattice

(* bit-slice functions over (a, b, carry-in) = variables (x1, x2, x3) *)
let sum_func =
  L.Boolfunc.of_fun_int ~name:"fa_sum" 3 (fun m ->
      (m lxor (m lsr 1) lxor (m lsr 2)) land 1 = 1)

let carry_func =
  L.Boolfunc.of_fun_int ~name:"fa_carry" 3 (fun m ->
      let pop = (m land 1) + ((m lsr 1) land 1) + ((m lsr 2) land 1) in
      pop >= 2)

type adder = {
  bits : int;
  sum_lattice : Lt.Lattice.t;
  carry_lattice : Lt.Lattice.t;
}

let ripple_adder bits =
  if bits <= 0 then invalid_arg "Arith.ripple_adder";
  { bits;
    sum_lattice = Lt.Altun_riedel.synthesize sum_func;
    carry_lattice = Lt.Altun_riedel.synthesize carry_func }

let adder_area a =
  a.bits * (Lt.Lattice.area a.sum_lattice + Lt.Lattice.area a.carry_lattice)

let add a x y =
  let limit = 1 lsl a.bits in
  if x < 0 || y < 0 || x >= limit || y >= limit then
    invalid_arg "Arith.add: operand out of range";
  let result = ref 0 and carry = ref 0 in
  for i = 0 to a.bits - 1 do
    let slice =
      ((x lsr i) land 1) lor (((y lsr i) land 1) lsl 1) lor (!carry lsl 2)
    in
    if Lt.Lattice.eval_int a.sum_lattice slice then
      result := !result lor (1 lsl i);
    carry := Bool.to_int (Lt.Lattice.eval_int a.carry_lattice slice)
  done;
  !result lor (!carry lsl a.bits)

type comparator = { cmp_bits : int; step_lattice : Lt.Lattice.t }

(* lt_out = a' b + (a = b) lt_in, over (a, b, lt_in) = (x1, x2, x3) *)
let lt_step =
  L.Boolfunc.of_fun_int ~name:"lt_step" 3 (fun m ->
      let a = m land 1 and b = (m lsr 1) land 1 and lt = (m lsr 2) land 1 in
      (a = 0 && b = 1) || (a = b && lt = 1))

let less_than bits =
  if bits <= 0 then invalid_arg "Arith.less_than";
  { cmp_bits = bits; step_lattice = Lt.Altun_riedel.synthesize lt_step }

let compare_lt c x y =
  let limit = 1 lsl c.cmp_bits in
  if x < 0 || y < 0 || x >= limit || y >= limit then
    invalid_arg "Arith.compare_lt: operand out of range";
  (* scan from the least significant bit: the final slice (MSB) wins *)
  let lt = ref false in
  for i = 0 to c.cmp_bits - 1 do
    let slice =
      ((x lsr i) land 1) lor (((y lsr i) land 1) lsl 1)
      lor (Bool.to_int !lt lsl 2)
    in
    lt := Lt.Lattice.eval_int c.step_lattice slice
  done;
  !lt

let multiplier_2x2 () =
  Array.init 4 (fun out ->
      let f =
        L.Boolfunc.of_fun_int
          ~name:(Printf.sprintf "mul2_p%d" out)
          4
          (fun m ->
            let a = m land 3 and b = (m lsr 2) land 3 in
            ((a * b) lsr out) land 1 = 1)
      in
      match L.Boolfunc.is_const f with
      | Some _ -> Lt.Compose.of_const 4 false
      | None -> Lt.Altun_riedel.synthesize f)

let multiply_2x2 lattices x y =
  if x < 0 || y < 0 || x > 3 || y > 3 then
    invalid_arg "Arith.multiply_2x2: operand out of range";
  let input = x lor (y lsl 2) in
  let result = ref 0 in
  Array.iteri
    (fun out l -> if Lt.Lattice.eval_int l input then result := !result lor (1 lsl out))
    lattices;
  !result
