module R = Nxc_reliability

type t = {
  words : int;
  width : int;
  chip : R.Defect.t;
  row_map : int array;  (* logical word -> physical row *)
  cells : bool array array;  (* physical storage *)
}

let row_defective chip ~width r =
  let rec go c =
    c < width && (R.Defect.is_defective chip r c || go (c + 1))
  in
  go 0

let create ?chip ~words ~width ~spares () =
  if words <= 0 || width <= 0 || spares < 0 then invalid_arg "Memory.create";
  let rows = words + spares in
  let chip =
    match chip with
    | None -> R.Defect.perfect ~rows ~cols:width
    | Some c ->
        if R.Defect.rows c < rows || R.Defect.cols c < width then
          invalid_arg "Memory.create: chip too small";
        c
  in
  let good =
    List.filter
      (fun r -> not (row_defective chip ~width r))
      (List.init rows Fun.id)
  in
  if List.length good < words then
    invalid_arg "Memory.create: not enough functional rows";
  { words;
    width;
    chip;
    row_map = Array.of_list (List.filteri (fun i _ -> i < words) good);
    cells = Array.make_matrix rows width false }

let words t = t.words
let width t = t.width

let repaired_rows t =
  (* logical rows whose physical row differs from the identity mapping *)
  let n = ref 0 in
  Array.iteri (fun logical physical -> if logical <> physical then incr n) t.row_map;
  !n

let check_addr t addr =
  if addr < 0 || addr >= t.words then invalid_arg "Memory: address out of range"

let effective t r c stored =
  match R.Defect.kind_at t.chip r c with
  | None -> stored
  | Some R.Defect.Stuck_open -> false
  | Some (R.Defect.Stuck_closed | R.Defect.Bridge) -> true

let write t ~addr data =
  check_addr t addr;
  if Array.length data <> t.width then invalid_arg "Memory.write: word width";
  let r = t.row_map.(addr) in
  Array.iteri (fun c b -> t.cells.(r).(c) <- b) data

let read t ~addr =
  check_addr t addr;
  let r = t.row_map.(addr) in
  Array.init t.width (fun c -> effective t r c t.cells.(r).(c))

let defect_free t =
  Array.for_all
    (fun r -> not (row_defective t.chip ~width:t.width r))
    t.row_map
