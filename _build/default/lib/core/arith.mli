(** WP3 extension: arithmetic elements realized as switching lattices.

    A ripple-carry adder whose per-bit sum (3-input parity) and carry
    (3-input majority) functions are synthesized as Altun–Riedel
    lattices and evaluated by lattice connectivity — arithmetic running
    on the simulated nano-fabric, the project's third work package. *)

type adder = {
  bits : int;
  sum_lattice : Nxc_lattice.Lattice.t;  (** parity of a, b, carry-in *)
  carry_lattice : Nxc_lattice.Lattice.t;  (** majority of a, b, carry-in *)
}

val ripple_adder : int -> adder

val adder_area : adder -> int
(** Total lattice sites across all bit positions. *)

val add : adder -> int -> int -> int
(** [add a x y] with [x, y < 2{^bits}]; the result includes the final
    carry as the top bit.  Every bit is computed by lattice
    evaluation. *)

type comparator = {
  cmp_bits : int;
  step_lattice : Nxc_lattice.Lattice.t;
      (** lt_out(a_i, b_i, lt_in) — one bit-slice of an iterative
          less-than comparator *)
}

val less_than : int -> comparator

val compare_lt : comparator -> int -> int -> bool
(** [compare_lt c a b] is [a < b], computed slice by slice on the
    lattice. *)

val multiplier_2x2 : unit -> Nxc_lattice.Lattice.t array
(** The four product bits of a 2x2 multiplier, each as a lattice over
    the 4 operand bits. *)

val multiply_2x2 : Nxc_lattice.Lattice.t array -> int -> int -> int
