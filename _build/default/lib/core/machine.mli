(** WP4 capstone: a programmable accumulator machine on the nano-fabric.

    The project's end goal is "the design and construction of an
    emerging nanocomputer" (Section II).  This module assembles one
    from the pieces built elsewhere in the repository:

    - data and program storage are {!Memory} crossbar arrays (with
      spare-row repair when a defect map is supplied);
    - the ALU is the lattice ripple adder of {!Arith};
    - the zero-flag and program-counter increment are switching
      lattices evaluated by connectivity;
    - control is a Moore-style step function in the spirit of {!Ssm}.

    The instruction set is a classic 8-instruction accumulator ISA.
    Programs genuinely execute through lattice evaluations — no host
    arithmetic computes an architectural result. *)

type instruction =
  | Ldi of int  (** acc <- immediate *)
  | Lda of int  (** acc <- mem[addr] *)
  | Sta of int  (** mem[addr] <- acc *)
  | Add of int  (** acc <- acc + mem[addr] (lattice adder, carry dropped) *)
  | Sub of int  (** acc <- acc - mem[addr] (two's complement, same adder) *)
  | Jmp of int  (** pc <- addr *)
  | Jnz of int  (** pc <- addr when acc <> 0 (lattice zero-flag) *)
  | Hlt

type t

val create :
  ?chip:Nxc_reliability.Defect.t ->
  word_bits:int ->
  data_words:int ->
  program:instruction list ->
  unit ->
  t
(** [word_bits] in [1..8]; the program may not exceed 256 instructions.
    When [chip] is given it backs the {e data} memory (with two spare
    rows), exercising the repair path. *)

val word_bits : t -> int

val lattice_sites : t -> int
(** Total lattice area of the machine's combinational logic (ALU,
    zero-flag, PC incrementer). *)

type state = {
  pc : int;
  acc : int;
  halted : bool;
  steps : int;
}

val state : t -> state

val peek : t -> int -> int
(** Data-memory word. *)

val poke : t -> int -> int -> unit

val step : t -> unit
(** One fetch-decode-execute cycle; no-op once halted. *)

val run : ?max_steps:int -> t -> state
(** Run to halt (or the step bound, default 10_000). *)

val assemble_sum_1_to_n : n:int -> instruction list
(** Demo program: sums 1..n by a JNZ loop into address 0. *)

val assemble_fibonacci : steps:int -> instruction list
(** Demo program: iterates Fibonacci, leaving F(steps) in address 0. *)
