module R = Nxc_reliability
module Lt = Nxc_lattice
module L = Nxc_logic

type instruction =
  | Ldi of int
  | Lda of int
  | Sta of int
  | Add of int
  | Sub of int
  | Jmp of int
  | Jnz of int
  | Hlt

type state = { pc : int; acc : int; halted : bool; steps : int }

type t = {
  bits : int;
  mask : int;
  program_length : int;
  imem : Memory.t;  (* 11-bit words: 3-bit opcode + 8-bit operand *)
  dmem : Memory.t;
  alu : Arith.adder;
  pc_alu : Arith.adder;
  nonzero : Lt.Lattice.t;
  mutable st : state;
}

let opcode = function
  | Ldi _ -> 0
  | Lda _ -> 1
  | Sta _ -> 2
  | Add _ -> 3
  | Sub _ -> 4
  | Jmp _ -> 5
  | Jnz _ -> 6
  | Hlt -> 7

let operand = function
  | Ldi x | Lda x | Sta x | Add x | Sub x | Jmp x | Jnz x -> x
  | Hlt -> 0

let encode instr = opcode instr lor (operand instr lsl 3)

let to_bits width value = Array.init width (fun i -> (value lsr i) land 1 = 1)

let of_bits bits =
  let v = ref 0 in
  Array.iteri (fun i b -> if b then v := !v lor (1 lsl i)) bits;
  !v

let create ?chip ~word_bits ~data_words ~program () =
  if word_bits < 1 || word_bits > 8 then invalid_arg "Machine.create: word_bits";
  if List.length program > 256 then invalid_arg "Machine.create: program too long";
  if program = [] then invalid_arg "Machine.create: empty program";
  List.iter
    (fun i ->
      let a = operand i in
      if a < 0 || a > 255 then invalid_arg "Machine.create: operand range")
    program;
  let imem =
    Memory.create ~words:(List.length program) ~width:11 ~spares:0 ()
  in
  List.iteri
    (fun addr instr -> Memory.write imem ~addr (to_bits 11 (encode instr)))
    program;
  let dmem = Memory.create ?chip ~words:data_words ~width:word_bits ~spares:2 () in
  (* zero flag: OR of the accumulator bits as a lattice *)
  let any_bit =
    L.Boolfunc.of_fun_int ~name:"nonzero" word_bits (fun m -> m <> 0)
  in
  { bits = word_bits;
    mask = (1 lsl word_bits) - 1;
    program_length = List.length program;
    imem;
    dmem;
    alu = Arith.ripple_adder word_bits;
    pc_alu = Arith.ripple_adder 8;
    nonzero = Lt.Altun_riedel.synthesize any_bit;
    st = { pc = 0; acc = 0; halted = false; steps = 0 } }

let word_bits m = m.bits

let lattice_sites m =
  Arith.adder_area m.alu + Arith.adder_area m.pc_alu
  + Lt.Lattice.area m.nonzero

let state m = m.st

let peek m addr = of_bits (Memory.read m.dmem ~addr)

let poke m addr value =
  Memory.write m.dmem ~addr (to_bits m.bits (value land m.mask))

(* all architectural arithmetic goes through the lattice adders *)
let alu_add m a b = Arith.add m.alu (a land m.mask) (b land m.mask) land m.mask

let alu_sub m a b =
  (* two's complement through the same adder: a + ~b + 1 *)
  let nb = lnot b land m.mask in
  alu_add m (alu_add m a nb) 1

let acc_nonzero m = Lt.Lattice.eval_int m.nonzero (m.st.acc land m.mask)

let decode word = (word land 7, (word lsr 3) land 0xff)

let step m =
  if not m.st.halted then begin
    if m.st.pc >= m.program_length then
      m.st <- { m.st with halted = true }
    else begin
      let op, arg = decode (of_bits (Memory.read m.imem ~addr:m.st.pc)) in
      let next_pc = Arith.add m.pc_alu m.st.pc 1 land 0xff in
      let st = m.st in
      let st' =
        match op with
        | 0 -> { st with acc = arg land m.mask; pc = next_pc }
        | 1 -> { st with acc = peek m arg; pc = next_pc }
        | 2 ->
            poke m arg st.acc;
            { st with pc = next_pc }
        | 3 -> { st with acc = alu_add m st.acc (peek m arg); pc = next_pc }
        | 4 -> { st with acc = alu_sub m st.acc (peek m arg); pc = next_pc }
        | 5 -> { st with pc = arg }
        | 6 -> { st with pc = (if acc_nonzero m then arg else next_pc) }
        | 7 -> { st with halted = true }
        | _ -> assert false
      in
      m.st <- { st' with steps = st.steps + 1 }
    end
  end

let run ?(max_steps = 10_000) m =
  let rec go () =
    if m.st.halted || m.st.steps >= max_steps then m.st
    else begin
      step m;
      go ()
    end
  in
  go ()

let assemble_sum_1_to_n ~n =
  if n < 1 || n > 20 then invalid_arg "assemble_sum_1_to_n: n in 1..20";
  [ Ldi 1; Sta 2;        (* const 1 *)
    Ldi n; Sta 1;        (* counter = n *)
    Ldi 0; Sta 0;        (* sum = 0 *)
    (* loop: *)
    Lda 0; Add 1; Sta 0; (* sum += counter *)
    Lda 1; Sub 2; Sta 1; (* counter -= 1 *)
    Jnz 6;               (* while counter <> 0 *)
    Hlt ]

let assemble_fibonacci ~steps =
  if steps < 1 || steps > 12 then invalid_arg "assemble_fibonacci: steps in 1..12";
  [ Ldi 1; Sta 2;          (* const 1 *)
    Ldi 0; Sta 0;          (* a = F(0) *)
    Ldi 1; Sta 1;          (* b = F(1) *)
    Ldi steps; Sta 3;      (* counter *)
    (* loop: *)
    Lda 0; Add 1; Sta 4;   (* t = a + b *)
    Lda 1; Sta 0;          (* a = b *)
    Lda 4; Sta 1;          (* b = t *)
    Lda 3; Sub 2; Sta 3;   (* counter -= 1 *)
    Jnz 8;
    Hlt ]
