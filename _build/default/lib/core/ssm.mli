(** WP4 extension: synchronous state machine on the nano-fabric.

    The paper's end goal is an SSM — "representation of a computer" —
    built from crossbar logic and memory.  This module assembles one:
    next-state and output logic are synthesized as switching lattices
    (via {!Synth}) and a register holds the state; {!step} evaluates
    one clock edge entirely through lattice connectivity.

    Inputs are variables [0 .. n_inputs-1]; state bits are variables
    [n_inputs .. n_inputs + state_bits - 1] of every logic function. *)

type t

val make :
  n_inputs:int ->
  state_bits:int ->
  next_state:Nxc_logic.Boolfunc.t array ->
  outputs:Nxc_logic.Boolfunc.t array ->
  t
(** Each function must have arity [n_inputs + state_bits].
    [next_state] has one function per state bit. *)

val n_inputs : t -> int
val state_bits : t -> int
val num_outputs : t -> int

val logic_area : t -> int
(** Total lattice sites of all next-state and output logic. *)

val step : t -> state:int -> input:int -> int * int
(** [(next_state, output_word)]. *)

val run : t -> init:int -> int list -> (int * int) list
(** Trace of [(state_after, output_after)] per input, threading state. *)

(** {2 Ready-made machines} *)

val counter : bits:int -> t
(** Mod-2{^bits} up-counter with an enable input; output = state. *)

val sequence_detector : pattern:bool list -> t
(** Mealy-style detector (output bit on the step completing the
    pattern) over a serial input, with overlap. *)

val equivalent_to :
  t -> reference:(state:int -> input:int -> int * int) -> bool
(** Exhaustive equivalence of {!step} against a functional reference
    over all states and inputs. *)
