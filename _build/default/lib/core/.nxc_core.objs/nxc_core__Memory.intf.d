lib/core/memory.mli: Nxc_reliability
