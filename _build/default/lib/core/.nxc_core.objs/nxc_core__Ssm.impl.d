lib/core/ssm.ml: Array Fun List Nxc_lattice Nxc_logic Printf
