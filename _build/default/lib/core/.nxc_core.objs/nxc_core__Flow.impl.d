lib/core/flow.ml: Array Logs Nxc_lattice Nxc_reliability Synth
