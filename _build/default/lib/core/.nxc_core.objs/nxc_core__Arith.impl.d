lib/core/arith.ml: Array Bool Nxc_lattice Nxc_logic Printf
