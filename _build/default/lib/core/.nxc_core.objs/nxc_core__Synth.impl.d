lib/core/synth.ml: List Nxc_crossbar Nxc_lattice Nxc_logic Option
