lib/core/synth.mli: Nxc_crossbar Nxc_lattice Nxc_logic
