lib/core/machine.mli: Nxc_reliability
