lib/core/report.mli: Format Synth
