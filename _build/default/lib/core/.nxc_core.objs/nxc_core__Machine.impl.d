lib/core/machine.ml: Arith Array List Memory Nxc_lattice Nxc_logic Nxc_reliability
