lib/core/ssm.mli: Nxc_logic
