lib/core/arith.mli: Nxc_lattice
