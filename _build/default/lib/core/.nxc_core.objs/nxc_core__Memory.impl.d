lib/core/memory.ml: Array Fun List Nxc_reliability
