lib/core/flow.mli: Nxc_lattice Nxc_logic Nxc_reliability Synth
