(** End-to-end flow (the paper's Fig. 2 pipeline): synthesize a
    function, self-map the resulting lattice onto a partially defective
    physical crossbar with BISM, and verify the mapped circuit still
    computes the function under the chip's remaining defects. *)

type result = {
  impl : Synth.t;
  bism : Nxc_reliability.Bism.stats;
  mapping : Nxc_reliability.Bism.mapping option;
  functional : bool;
      (** the lattice, evaluated with the defects of its mapped physical
          region applied to its sites, still equals the function *)
}

val lattice_with_defects :
  Nxc_lattice.Lattice.t ->
  Nxc_reliability.Defect.t ->
  Nxc_reliability.Bism.mapping ->
  Nxc_lattice.Lattice.t
(** Apply the chip's defects to the mapped sites: a stuck-open
    crosspoint forces the site to constant 0, a stuck-closed or bridge
    crosspoint to constant 1 (conservative). *)

val run :
  ?scheme:Nxc_reliability.Bism.scheme ->
  ?max_configs:int ->
  Nxc_reliability.Rng.t ->
  chip:Nxc_reliability.Defect.t ->
  Nxc_logic.Boolfunc.t ->
  result
(** Default scheme: [Hybrid 10]. *)

(** {2 Defect-aware variant (Fig. 6a)}

    Instead of demanding a defect-free region, match the specific
    lattice configuration against the chip's defect kinds
    ({!Nxc_reliability.Defect_flow.place_lattice}); survives much
    higher densities at a per-application search cost. *)

type aware_result = {
  aware_impl : Synth.t;
  placed : bool;
  aware_functional : bool;
}

val run_defect_aware :
  ?attempts:int ->
  Nxc_reliability.Rng.t ->
  chip:Nxc_reliability.Defect.t ->
  Nxc_logic.Boolfunc.t ->
  aware_result
