module L = Nxc_logic
module Lt = Nxc_lattice

type t = {
  n_inputs : int;
  state_bits : int;
  next_lattices : Lt.Lattice.t array;
  out_lattices : Lt.Lattice.t array;
}

let lattice_of f =
  match L.Boolfunc.is_const f with
  | Some b -> Lt.Compose.of_const (max 1 (L.Boolfunc.n_vars f)) b
  | None -> Lt.Altun_riedel.synthesize f

let make ~n_inputs ~state_bits ~next_state ~outputs =
  if state_bits <= 0 then invalid_arg "Ssm.make: no state";
  if Array.length next_state <> state_bits then
    invalid_arg "Ssm.make: one next-state function per state bit";
  let arity = n_inputs + state_bits in
  Array.iter
    (fun f ->
      if L.Boolfunc.n_vars f <> arity then
        invalid_arg "Ssm.make: arity must be inputs + state bits")
    (Array.append next_state outputs);
  { n_inputs;
    state_bits;
    next_lattices = Array.map lattice_of next_state;
    out_lattices = Array.map lattice_of outputs }

let n_inputs t = t.n_inputs
let state_bits t = t.state_bits
let num_outputs t = Array.length t.out_lattices

let logic_area t =
  Array.fold_left (fun acc l -> acc + Lt.Lattice.area l) 0 t.next_lattices
  + Array.fold_left (fun acc l -> acc + Lt.Lattice.area l) 0 t.out_lattices

let step t ~state ~input =
  if state < 0 || state >= 1 lsl t.state_bits then invalid_arg "Ssm.step: state";
  if input < 0 || (t.n_inputs > 0 && input >= 1 lsl t.n_inputs) then
    invalid_arg "Ssm.step: input";
  let m = input lor (state lsl t.n_inputs) in
  let next = ref 0 and out = ref 0 in
  Array.iteri
    (fun b l -> if Lt.Lattice.eval_int l m then next := !next lor (1 lsl b))
    t.next_lattices;
  Array.iteri
    (fun b l -> if Lt.Lattice.eval_int l m then out := !out lor (1 lsl b))
    t.out_lattices;
  (!next, !out)

let run t ~init inputs =
  let state = ref init in
  List.map
    (fun input ->
      let next, out = step t ~state:!state ~input in
      state := next;
      (next, out))
    inputs

let bits_for n =
  let rec go b = if 1 lsl b >= n then b else go (b + 1) in
  max 1 (go 1)

let counter ~bits =
  if bits <= 0 then invalid_arg "Ssm.counter";
  let arity = 1 + bits in
  (* variable 0 = enable; variables 1..bits = state *)
  let next_state =
    Array.init bits (fun b ->
        L.Boolfunc.of_fun_int ~name:(Printf.sprintf "cnt_next%d" b) arity
          (fun m ->
            let enable = m land 1 = 1 in
            let state = m lsr 1 in
            let next = if enable then (state + 1) land ((1 lsl bits) - 1) else state in
            (next lsr b) land 1 = 1))
  in
  let outputs =
    Array.init bits (fun b ->
        L.Boolfunc.of_fun_int ~name:(Printf.sprintf "cnt_out%d" b) arity
          (fun m -> (m lsr (1 + b)) land 1 = 1))
  in
  make ~n_inputs:1 ~state_bits:bits ~next_state ~outputs

let sequence_detector ~pattern =
  let pat = Array.of_list pattern in
  let len = Array.length pat in
  if len = 0 then invalid_arg "Ssm.sequence_detector: empty pattern";
  (* KMP-style automaton over states 0..len-1 = matched prefix length *)
  let matches q b =
    (* longest k <= len such that pat[0..k-1] is a suffix of
       pat[0..q-1] followed by b *)
    let word = Array.append (Array.sub pat 0 q) [| b |] in
    let wl = Array.length word in
    let rec try_k k =
      if k = 0 then 0
      else if
        k <= wl
        && Array.for_all Fun.id
             (Array.init k (fun i -> pat.(i) = word.(wl - k + i)))
      then k
      else try_k (k - 1)
    in
    try_k (min len wl)
  in
  (* longest proper border of the full pattern: the state to resume
     from after an accept, preserving overlaps *)
  let border =
    let rec proper k =
      if k = 0 then 0
      else if
        Array.for_all Fun.id
          (Array.init k (fun i -> pat.(i) = pat.(len - k + i)))
      then k
      else proper (k - 1)
    in
    proper (len - 1)
  in
  let delta q b =
    let k = matches q b in
    if k = len then (border, true) else (k, false)
  in
  let state_bits = bits_for len in
  let arity = 1 + state_bits in
  let next_state =
    Array.init state_bits (fun b ->
        L.Boolfunc.of_fun_int ~name:(Printf.sprintf "det_next%d" b) arity
          (fun m ->
            let input = m land 1 = 1 in
            let q = min (len - 1) (m lsr 1) in
            let q', _ = delta q input in
            (q' lsr b) land 1 = 1))
  in
  let outputs =
    [| L.Boolfunc.of_fun_int ~name:"det_accept" arity (fun m ->
           let input = m land 1 = 1 in
           let q = min (len - 1) (m lsr 1) in
           snd (delta q input)) |]
  in
  make ~n_inputs:1 ~state_bits ~next_state ~outputs

let equivalent_to t ~reference =
  let states = 1 lsl t.state_bits in
  let inputs = if t.n_inputs = 0 then 1 else 1 lsl t.n_inputs in
  let rec go s i =
    if s >= states then true
    else if i >= inputs then go (s + 1) 0
    else
      step t ~state:s ~input:i = reference ~state:s ~input:i && go s (i + 1)
  in
  go 0 0
