let pp_dims ppf (r, c) = Format.fprintf ppf "%dx%d" r c

let dims_str = function
  | None -> "-"
  | Some (r, c) -> Printf.sprintf "%dx%d" r c

let area = function None -> None | Some (r, c) -> Some (r * c)

let size_header =
  Printf.sprintf "%-12s %3s  %-7s %-7s %-7s %-7s %-7s %5s" "name" "n" "diode"
    "fet" "ar" "dec" "dred" "best"

let size_row (s : Synth.sizes) =
  Printf.sprintf "%-12s %3d  %-7s %-7s %-7s %-7s %-7s %5d" s.Synth.name
    s.Synth.n_vars
    (dims_str s.Synth.diode_size)
    (dims_str s.Synth.fet_size)
    (dims_str (Some s.Synth.ar_size))
    (dims_str (Some s.Synth.dec_size))
    (dims_str s.Synth.dred_size)
    s.Synth.best_lattice_area

let ratio_stats rows extract =
  (* mean of (two-terminal area / best lattice area) over defined rows *)
  let ratios =
    List.filter_map
      (fun s ->
        match area (extract s) with
        | Some a when s.Synth.best_lattice_area > 0 ->
            Some (float_of_int a /. float_of_int s.Synth.best_lattice_area)
        | _ -> None)
      rows
  in
  match ratios with
  | [] -> (0, 0.0)
  | rs ->
      ( List.length (List.filter (fun r -> r > 1.0) rs),
        List.fold_left ( +. ) 0.0 rs /. float_of_int (List.length rs) )

let comparison_summary rows =
  let n = List.length rows in
  let diode_wins, diode_ratio = ratio_stats rows (fun s -> s.Synth.diode_size) in
  let fet_wins, fet_ratio = ratio_stats rows (fun s -> s.Synth.fet_size) in
  let dec_improves =
    List.length
      (List.filter
         (fun s ->
           let ar = fst s.Synth.ar_size * snd s.Synth.ar_size in
           let dec = fst s.Synth.dec_size * snd s.Synth.dec_size in
           dec < ar)
         rows)
  in
  Printf.sprintf
    "lattice smaller than diode on %d/%d (mean diode/lattice area %.2fx); \
     smaller than FET on %d/%d (mean %.2fx); decomposition improved %d/%d"
    diode_wins n diode_ratio fet_wins n fet_ratio dec_improves n

let size_table rows =
  String.concat "\n"
    ((size_header :: List.map size_row rows) @ [ ""; comparison_summary rows ])
