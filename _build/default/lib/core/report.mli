(** Text tables summarizing synthesis results — the Section III
    comparison format used by the benches and examples. *)

val size_row : Synth.sizes -> string
(** One fixed-width row: name, arity, products, and all array sizes. *)

val size_header : string

val size_table : Synth.sizes list -> string
(** Header + rows + a summary line (totals and who-wins counts). *)

val comparison_summary : Synth.sizes list -> string
(** The Section III headline: on how many benchmarks the four-terminal
    lattice beats the diode / FET arrays, and the mean area ratios. *)

val pp_dims : Format.formatter -> int * int -> unit
