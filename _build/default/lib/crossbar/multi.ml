module L = Nxc_logic
module Cube = L.Cube
module Cover = L.Cover
module Tt = L.Truth_table

type t = {
  n : int;
  outputs : L.Boolfunc.t array;
  products : Cube.t array;
  drives : bool array array;  (* product -> output *)
  literals : (int * Cube.polarity) array;
}

let cube_implies_table n cube tt =
  Tt.implies (Tt.of_cover (Cover.make n [ cube ])) tt

let synthesize ?method_ fs =
  (match fs with [] -> invalid_arg "Multi.synthesize: no outputs" | _ -> ());
  let outputs = Array.of_list fs in
  let n = L.Boolfunc.n_vars outputs.(0) in
  Array.iter
    (fun f ->
      if L.Boolfunc.n_vars f <> n then
        invalid_arg "Multi.synthesize: arity mismatch";
      if L.Boolfunc.is_const f <> None then
        invalid_arg "Multi.synthesize: constant output")
    outputs;
  let k = Array.length outputs in
  let tables = Array.map L.Boolfunc.table outputs in
  (* candidate products: each output's own cover, plus covers of
     pairwise conjunctions as sharing seeds *)
  let candidates = Hashtbl.create 64 in
  let add_cover c = List.iter (fun cube -> Hashtbl.replace candidates cube ()) (Cover.cubes c) in
  Array.iter (fun f -> add_cover (L.Minimize.sop ?method_ f)) outputs;
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      let conj = Tt.band tables.(i) tables.(j) in
      if Tt.is_const conj = None then
        add_cover (L.Minimize.sop_table ?method_ conj)
    done
  done;
  let cand = Hashtbl.fold (fun c () acc -> c :: acc) candidates [] in
  let cand = List.sort Cube.compare cand in
  (* usable: a candidate may drive output o iff it implies f_o *)
  let usable =
    List.map
      (fun cube ->
        (cube, Array.map (fun tt -> cube_implies_table n cube tt) tables))
      cand
  in
  (* greedy cover of all (minterm, output) targets *)
  let remaining = Hashtbl.create 256 in
  Array.iteri
    (fun o tt -> List.iter (fun m -> Hashtbl.replace remaining (m, o) ()) (Tt.minterms tt))
    tables;
  let chosen = ref [] in
  while Hashtbl.length remaining > 0 do
    let best = ref None and best_gain = ref 0 in
    List.iter
      (fun (cube, mask) ->
        let gain = ref 0 in
        Hashtbl.iter
          (fun (m, o) () ->
            if mask.(o) && Cube.eval_int cube m then incr gain)
          remaining;
        if !gain > !best_gain then begin
          best_gain := !gain;
          best := Some (cube, mask)
        end)
      usable;
    match !best with
    | None ->
        (* cannot happen: each output's own cover cubes are usable and
           jointly cover its minterms *)
        assert false
    | Some (cube, mask) ->
        chosen := (cube, mask) :: !chosen;
        let to_remove =
          Hashtbl.fold
            (fun (m, o) () acc ->
              if mask.(o) && Cube.eval_int cube m then (m, o) :: acc else acc)
            remaining []
        in
        List.iter (fun key -> Hashtbl.remove remaining key) to_remove
  done;
  let chosen = List.rev !chosen in
  let products = Array.of_list (List.map fst chosen) in
  let drives = Array.of_list (List.map snd chosen) in
  let literals =
    Array.of_list
      (Cover.distinct_literals (Cover.make n (Array.to_list products)))
  in
  { n; outputs; products; drives; literals }

let n_vars x = x.n
let num_outputs x = Array.length x.outputs
let num_products x = Array.length x.products

let dims x =
  { Model.rows = num_products x;
    cols = Array.length x.literals + num_outputs x }

let crosspoints x = Model.crosspoints (dims x)

let products x = Array.copy x.products

let connected_outputs x r = Array.copy x.drives.(r)

let eval_int x m =
  let out = Array.make (num_outputs x) false in
  Array.iteri
    (fun r cube ->
      if Cube.eval_int cube m then
        Array.iteri (fun o d -> if d then out.(o) <- true) x.drives.(r))
    x.products;
  out

let separate_crosspoints ?method_ fs =
  List.fold_left
    (fun acc f ->
      let d = Diode.size_formula ?method_ f in
      acc + Model.crosspoints d)
    0 fs

let pp ppf x =
  let d = dims x in
  Format.fprintf ppf "multi-output crossbar %dx%d (%d products, %d outputs)@."
    d.Model.rows d.Model.cols (num_products x) (num_outputs x);
  Array.iteri
    (fun r cube ->
      Format.fprintf ppf "  P%-2d %a -> %s@." (r + 1) Cube.pp cube
        (String.concat ""
           (Array.to_list
              (Array.map (fun b -> if b then "1" else ".") x.drives.(r)))))
    x.products
