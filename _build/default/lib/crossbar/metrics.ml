module L = Nxc_logic

type report = {
  impl : string;
  rows : int;
  cols : int;
  crosspoints : int;
  programmed : int;
  area_nm2 : float;
  delay_ps : float;
  energy_aj : float;
}

let of_dims ?(tech = Model.diode_tech) ~impl ~programmed ~path_length dims =
  let { Model.rows; cols } = dims in
  { impl;
    rows;
    cols;
    crosspoints = rows * cols;
    programmed;
    area_nm2 = float_of_int rows *. tech.Model.pitch_nm
               *. (float_of_int cols *. tech.Model.pitch_nm);
    delay_ps = float_of_int path_length *. tech.Model.crosspoint_delay_ps;
    energy_aj = float_of_int programmed *. tech.Model.crosspoint_energy_aj }

let diode ?(tech = Model.diode_tech) x =
  let dims = Diode.dims x in
  of_dims ~tech ~impl:"diode"
    ~programmed:(Model.programmed (Diode.placement x))
    ~path_length:(dims.Model.rows + dims.Model.cols)
    dims

let fet ?(tech = Model.fet_tech) x =
  let dims = Fet.dims x in
  (* longest series chain: max programmed devices in one column *)
  let placement = Fet.placement x in
  let per_col = Array.make dims.Model.cols 0 in
  Model.iter_programmed (fun _ c -> per_col.(c) <- per_col.(c) + 1) placement;
  let path_length = Array.fold_left max 1 per_col in
  of_dims ~tech ~impl:"fet"
    ~programmed:(Model.programmed placement)
    ~path_length dims

let pp ppf r =
  Format.fprintf ppf
    "%-14s %3dx%-3d  xpoints %4d  used %4d  area %8.0f nm^2  delay %6.1f ps  \
     energy %7.1f aJ"
    r.impl r.rows r.cols r.crosspoints r.programmed r.area_nm2 r.delay_ps
    r.energy_aj

let pp_table ppf rs =
  List.iter (fun r -> Format.fprintf ppf "%a@\n" pp r) rs
