module L = Nxc_logic
module Cube = L.Cube
module Cover = L.Cover

type fold = {
  top : int * Cube.polarity;
  bottom : int * Cube.polarity;
}

type t = {
  original_cols : int;
  folded_cols : int;
  folds : fold list;
  unpaired : (int * Cube.polarity) list;
}

(* rows (as a bitmask) in which each literal column is used *)
let usage_masks xbar =
  let cover = Diode.cover xbar in
  let lits = Diode.literal_columns xbar in
  Array.map
    (fun lit ->
      List.fold_left
        (fun acc (r, cube) ->
          if List.mem lit (Cube.literals cube) then acc lor (1 lsl r) else acc)
        0
        (List.mapi (fun r c -> (r, c)) (Cover.cubes cover)))
    lits

let fold_columns xbar =
  let lits = Diode.literal_columns xbar in
  let masks = usage_masks xbar in
  let n = Array.length lits in
  let paired = Array.make n false in
  let folds = ref [] in
  (* greedy: process columns by descending usage, pair each with the
     densest compatible unpaired partner *)
  let order =
    List.sort
      (fun a b ->
        compare
          (- (let rec pop m = if m = 0 then 0 else (m land 1) + pop (m lsr 1) in
              pop masks.(a)))
          (- (let rec pop m = if m = 0 then 0 else (m land 1) + pop (m lsr 1) in
              pop masks.(b))))
      (List.init n Fun.id)
  in
  List.iter
    (fun i ->
      if not paired.(i) then
        let partner =
          List.find_opt
            (fun j -> j <> i && (not paired.(j)) && masks.(i) land masks.(j) = 0)
            order
        in
        match partner with
        | Some j ->
            paired.(i) <- true;
            paired.(j) <- true;
            folds := { top = lits.(i); bottom = lits.(j) } :: !folds
        | None -> ())
    order;
  let unpaired =
    List.filter_map
      (fun i -> if paired.(i) then None else Some lits.(i))
      (List.init n Fun.id)
  in
  { original_cols = n;
    folded_cols = List.length !folds + List.length unpaired;
    folds = List.rev !folds;
    unpaired }

let folded_dims xbar =
  let f = fold_columns xbar in
  { Model.rows = (Diode.dims xbar).Model.rows; cols = f.folded_cols + 1 }

let valid xbar f =
  let cover = Diode.cover xbar in
  List.for_all
    (fun { top; bottom } ->
      List.for_all
        (fun cube ->
          let lits = Cube.literals cube in
          not (List.mem top lits && List.mem bottom lits))
        (Cover.cubes cover))
    f.folds

let saving f =
  if f.original_cols = 0 then 0.0
  else
    float_of_int (f.original_cols - f.folded_cols)
    /. float_of_int f.original_cols
