module L = Nxc_logic
module Cube = L.Cube
module Cover = L.Cover

type t = {
  n : int;
  pullup : Cube.t array;   (* products of f *)
  pulldown : Cube.t array; (* products of f^D *)
  rows : (int * Cube.polarity) array;
  placement : Model.placement;
}

let flip (p : Cube.polarity) : Cube.polarity =
  match p with Pos -> Neg | Neg -> Pos

let of_covers ~n ~f_cover ~dual_cover =
  let ups = Cover.cubes f_cover and downs = Cover.cubes dual_cover in
  if ups = [] || downs = [] then
    invalid_arg "Fet.of_covers: degenerate cover";
  if List.exists Cube.is_top ups || List.exists Cube.is_top downs then
    invalid_arg "Fet.of_covers: constant function";
  (* gate lines: literals of f plus complements of literals of f^D (the
     paper's formula counts the former; they coincide on its example) *)
  let wanted = Hashtbl.create 16 in
  List.iter
    (fun cube -> List.iter (fun l -> Hashtbl.replace wanted l ()) (Cube.literals cube))
    ups;
  List.iter
    (fun cube ->
      List.iter
        (fun (v, p) -> Hashtbl.replace wanted (v, flip p) ())
        (Cube.literals cube))
    downs;
  let rows =
    Hashtbl.fold (fun l () acc -> l :: acc) wanted [] |> List.sort compare
    |> Array.of_list
  in
  let row_of = Hashtbl.create 16 in
  Array.iteri (fun r l -> Hashtbl.replace row_of l r) rows;
  let pullup = Array.of_list ups and pulldown = Array.of_list downs in
  let cols = Array.length pullup + Array.length pulldown in
  let matrix = Array.make_matrix (Array.length rows) cols false in
  Array.iteri
    (fun c cube ->
      List.iter
        (fun l -> matrix.(Hashtbl.find row_of l).(c) <- true)
        (Cube.literals cube))
    pullup;
  Array.iteri
    (fun j cube ->
      let c = Array.length pullup + j in
      List.iter
        (fun (v, p) -> matrix.(Hashtbl.find row_of (v, flip p)).(c) <- true)
        (Cube.literals cube))
    pulldown;
  { n; pullup; pulldown; rows;
    placement = Model.placement_of_matrix matrix }

let synthesize ?method_ f =
  match L.Boolfunc.is_const f with
  | Some _ -> invalid_arg "Fet.synthesize: constant function"
  | None ->
      of_covers ~n:(L.Boolfunc.n_vars f)
        ~f_cover:(L.Minimize.sop ?method_ f)
        ~dual_cover:(L.Minimize.dual_sop ?method_ f)

let n_vars x = x.n
let dims x = x.placement.Model.dims

(* Gate lines: distinct literals of f plus the complements of the dual
   cover's literals.  On the paper's example (and whenever f's literal
   set is closed under the dual's complements) this is exactly the
   paper's "number of literals in f". *)
let size_formula ?method_ f =
  let fc = L.Minimize.sop ?method_ f in
  let dc = L.Minimize.dual_sop ?method_ f in
  let lits =
    Cover.distinct_literals fc
    @ List.map (fun (v, p) -> (v, flip p)) (Cover.distinct_literals dc)
    |> List.sort_uniq compare
  in
  { Model.rows = List.length lits;
    cols = Cover.num_cubes fc + Cover.num_cubes dc }

let placement x = x.placement
let num_pullup x = Array.length x.pullup
let num_pulldown x = Array.length x.pulldown
let row_literals x = x.rows

let pullup_conducts x m =
  Array.exists (fun p -> Cube.eval_int p m) x.pullup

let pulldown_conducts x m =
  (* a pull-down chain conducts when every literal of its dual product
     is false *)
  Array.exists
    (fun q -> List.for_all (fun (v, p) ->
         let bit = m land (1 lsl v) <> 0 in
         (match (p : Cube.polarity) with Pos -> not bit | Neg -> bit))
         (Cube.literals q))
    x.pulldown

let is_complementary x =
  let rec go m =
    m >= 1 lsl x.n
    || (pullup_conducts x m <> pulldown_conducts x m && go (m + 1))
  in
  go 0

let eval_int x m =
  let up = pullup_conducts x m and down = pulldown_conducts x m in
  assert (up <> down);
  up

let eval x a =
  let m = ref 0 in
  Array.iteri (fun i b -> if b then m := !m lor (1 lsl i)) a;
  eval_int x !m

let pp ppf x =
  let { Model.rows; cols } = dims x in
  Format.fprintf ppf "fet crossbar %dx%d (%d pull-up + %d pull-down)@\n" rows
    cols (num_pullup x) (num_pulldown x);
  Array.iteri
    (fun r (v, p) ->
      Format.fprintf ppf "x%d%s | " (v + 1)
        (match (p : Cube.polarity) with Pos -> " " | Neg -> "'");
      for c = 0 to cols - 1 do
        Format.fprintf ppf "%s "
          (if x.placement.Model.connected.(r).(c) then
             if c < num_pullup x then "U" else "N"
           else ".")
      done;
      Format.pp_print_newline ppf ())
    x.rows
