(** FET (CMOS-style) crossbar implementation of SOP functions.

    Fig. 3 of the paper: each product of [f] and of its dual [f{^D}]
    occupies a vertical nanowire (column) and each distinct literal a
    horizontal gate line (row).

    - a {e pull-up} column for a product [P] of [f] is a series chain of
      FETs gated by the literals of [P]: it conducts (drives the output
      to 1) exactly when [P] is satisfied;
    - a {e pull-down} column for a product [Q] of [f{^D}] is a series
      chain gated by the {e complements} of [Q]'s literals: it conducts
      (drives 0) exactly when every literal of [Q] is false, i.e. when
      [Q] witnesses [f{^D}](not x) = 1, i.e. [f](x) = 0.

    Duality makes the two networks complementary: on every input
    exactly one of them conducts ({!is_complementary}), which the test
    suite verifies — the structural analogue of CMOS's static
    correctness.

    Size: [#literals x (#products(f) + #products(f{^D}))]. *)

type t

val of_covers :
  n:int -> f_cover:Nxc_logic.Cover.t -> dual_cover:Nxc_logic.Cover.t -> t
(** Raises [Invalid_argument] on degenerate (constant) covers. *)

val synthesize : ?method_:Nxc_logic.Minimize.method_ -> Nxc_logic.Boolfunc.t -> t
(** Minimize [f] and [f{^D}] and build.  Raises [Invalid_argument] on
    constant functions. *)

val n_vars : t -> int

val dims : t -> Model.dims

val size_formula : ?method_:Nxc_logic.Minimize.method_ -> Nxc_logic.Boolfunc.t -> Model.dims

val placement : t -> Model.placement
(** Programmed crosspoints of both networks on the shared grid; the
    pull-up columns come first. *)

val num_pullup : t -> int

val num_pulldown : t -> int

val row_literals : t -> (int * Nxc_logic.Cube.polarity) array
(** Gate line of each row. *)

val pullup_conducts : t -> int -> bool
val pulldown_conducts : t -> int -> bool

val is_complementary : t -> bool
(** Exactly one network conducts on every assignment.  Always true for
    a function/dual cover pair. *)

val eval_int : t -> int -> bool

val eval : t -> bool array -> bool

val pp : Format.formatter -> t -> unit
