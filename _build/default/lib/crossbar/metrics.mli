(** First-order area / delay / energy estimates for crossbar and
    lattice implementations.

    The DATE'17 paper optimizes array {e size}; the project it
    summarizes also targets delay and power (Section II).  These
    estimates give those axes a concrete, clearly-documented model:

    - area: [(rows * pitch) * (cols * pitch)];
    - delay: worst conduction-path length (in crosspoints) times the
      per-crosspoint RC contribution;
    - energy: number of switching crosspoints times per-device energy.

    The absolute values are technology-parameter scaled and only
    meaningful relatively, which is how the benches use them. *)

type report = {
  impl : string;
  rows : int;
  cols : int;
  crosspoints : int;
  programmed : int;  (** programmed/used devices *)
  area_nm2 : float;
  delay_ps : float;
  energy_aj : float;
}

val of_dims :
  ?tech:Model.tech ->
  impl:string ->
  programmed:int ->
  path_length:int ->
  Model.dims ->
  report

val diode : ?tech:Model.tech -> Diode.t -> report
(** Path: literal column -> row -> output column: [2] crosspoints plus
    wire spans, modelled as [rows + cols]. *)

val fet : ?tech:Model.tech -> Fet.t -> report
(** Path: longest series chain = largest product size. *)

val pp : Format.formatter -> report -> unit

val pp_table : Format.formatter -> report list -> unit
