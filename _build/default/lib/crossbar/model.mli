(** Common crossbar modelling types.

    A two-terminal switch crossbar is a grid of horizontal and vertical
    nanowires with a programmable crosspoint at every intersection
    (Fig. 1 of the paper).  The concrete conduction semantics differ
    between the diode and FET realizations ({!Diode}, {!Fet}); this
    module holds what they share: dimensions, placement matrices and
    technology descriptions. *)

type dims = { rows : int; cols : int }

val crosspoints : dims -> int

type placement = {
  dims : dims;
  connected : bool array array;
      (** [connected.(r).(c)] — whether the crosspoint at row [r],
          column [c] is programmed (a device is formed there). *)
}

val placement_of_matrix : bool array array -> placement
(** Validates rectangularity.  Raises [Invalid_argument]. *)

val programmed : placement -> int
(** Number of programmed crosspoints. *)

val iter_programmed : (int -> int -> unit) -> placement -> unit

(** Technology parameters used by {!Metrics} for first-order area /
    delay / energy estimates.  Defaults are order-of-magnitude values
    for self-assembled nanowire crossbars (~10 nm pitch); they scale the
    reported numbers but never change any comparison performed in the
    benches. *)
type tech = {
  tech_name : string;
  pitch_nm : float;  (** nanowire pitch *)
  crosspoint_delay_ps : float;  (** per-crosspoint RC delay contribution *)
  crosspoint_energy_aj : float;  (** per-switching-crosspoint energy *)
}

val diode_tech : tech
val fet_tech : tech
val lattice_tech : tech
