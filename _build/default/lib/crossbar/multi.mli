(** Multi-output diode crossbar (PLA-style product sharing).

    Real designs map function {e vectors}, not single outputs: an
    AND-plane of shared products feeds an OR-plane with one output
    column per function.  A product row serves every output it
    implies, so outputs with common structure (adder bits, symmetric
    counters) share rows — the area advantage this module quantifies
    against per-output single crossbars.

    Product selection is a greedy set cover over (minterm, output)
    targets with candidates drawn from each output's minimized cover
    plus the covers of pairwise conjunctions (good sharing seeds). *)

type t

val synthesize : ?method_:Nxc_logic.Minimize.method_ -> Nxc_logic.Boolfunc.t list -> t
(** All functions must share an arity; constant outputs are rejected
    ([Invalid_argument]), as in {!Diode}. *)

val n_vars : t -> int

val num_outputs : t -> int

val num_products : t -> int

val dims : t -> Model.dims
(** Rows = shared products; cols = distinct literals + one output
    column per function. *)

val crosspoints : t -> int

val products : t -> Nxc_logic.Cube.t array

val connected_outputs : t -> int -> bool array
(** [connected_outputs x r]: which outputs row [r] drives. *)

val eval_int : t -> int -> bool array
(** All outputs under one assignment. *)

val separate_crosspoints :
  ?method_:Nxc_logic.Minimize.method_ -> Nxc_logic.Boolfunc.t list -> int
(** Total crosspoints of per-output single-function diode crossbars —
    the sharing baseline. *)

val pp : Format.formatter -> t -> unit
