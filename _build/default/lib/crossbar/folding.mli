(** Column folding for diode crossbars.

    Classic PLA folding, in the spirit of the array-optimization work
    the paper builds on (Morgul–Altun, DDECS 2015, reference [11]):
    two literal columns whose literal sets touch {e disjoint} product
    rows can share one physical column (one entered from the top of
    the array, the other from the bottom), cutting array width.

    Optimal folding is NP-hard; this is the standard greedy pairing on
    the column conflict graph, which already recovers most of the
    benefit on two-level covers. *)

type fold = {
  top : int * Nxc_logic.Cube.polarity;  (** literal entering from the top *)
  bottom : int * Nxc_logic.Cube.polarity;
}

type t = {
  original_cols : int;  (** literal columns before folding *)
  folded_cols : int;  (** physical literal columns after folding *)
  folds : fold list;
  unpaired : (int * Nxc_logic.Cube.polarity) list;
}

val fold_columns : Diode.t -> t
(** Greedy maximum pairing of conflict-free literal columns. *)

val folded_dims : Diode.t -> Model.dims
(** Dimensions after folding (output column included). *)

val valid : Diode.t -> t -> bool
(** Every fold pair is conflict-free: no product row uses both
    literals.  Guaranteed by construction; re-checked in tests. *)

val saving : t -> float
(** Fraction of literal columns eliminated. *)
