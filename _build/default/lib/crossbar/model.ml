type dims = { rows : int; cols : int }

let crosspoints d = d.rows * d.cols

type placement = { dims : dims; connected : bool array array }

let placement_of_matrix m =
  let rows = Array.length m in
  if rows = 0 then invalid_arg "Model.placement_of_matrix: no rows";
  let cols = Array.length m.(0) in
  if cols = 0 then invalid_arg "Model.placement_of_matrix: empty rows";
  Array.iter
    (fun row ->
      if Array.length row <> cols then
        invalid_arg "Model.placement_of_matrix: ragged rows")
    m;
  { dims = { rows; cols }; connected = Array.map Array.copy m }

let programmed p =
  Array.fold_left
    (fun acc row -> Array.fold_left (fun acc b -> if b then acc + 1 else acc) acc row)
    0 p.connected

let iter_programmed f p =
  Array.iteri
    (fun r row -> Array.iteri (fun c b -> if b then f r c) row)
    p.connected

type tech = {
  tech_name : string;
  pitch_nm : float;
  crosspoint_delay_ps : float;
  crosspoint_energy_aj : float;
}

let diode_tech =
  { tech_name = "diode"; pitch_nm = 10.0; crosspoint_delay_ps = 5.0;
    crosspoint_energy_aj = 20.0 }

let fet_tech =
  { tech_name = "fet"; pitch_nm = 12.0; crosspoint_delay_ps = 8.0;
    crosspoint_energy_aj = 12.0 }

let lattice_tech =
  { tech_name = "four-terminal"; pitch_nm = 10.0; crosspoint_delay_ps = 6.0;
    crosspoint_energy_aj = 10.0 }
