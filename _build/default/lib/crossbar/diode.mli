(** Diode-resistor crossbar implementation of SOP functions.

    Fig. 3 of the paper: each product of [f] occupies a horizontal
    nanowire (row) and each distinct literal a vertical nanowire
    (column); one extra column collects the output.  A diode is
    programmed at [(row of product P, column of literal l)] when
    [l] appears in [P], and at [(row of P, output column)] for every
    product.  Row lines compute wired-AND of their literals; the output
    column computes wired-OR of the rows.

    Size: [#products x (#distinct literals + 1)] — optimal given the
    SOP, per the paper. *)

type t

val of_cover : Nxc_logic.Cover.t -> t
(** Raises [Invalid_argument] if the cover contains the universal cube
    (constants have no SOP crossbar; test with
    {!Nxc_logic.Cover.is_bottom} / handle upstream) or is empty. *)

val synthesize : ?method_:Nxc_logic.Minimize.method_ -> Nxc_logic.Boolfunc.t -> t
(** Minimize and build.  Raises [Invalid_argument] on constant
    functions. *)

val n_vars : t -> int

val dims : t -> Model.dims
(** Rows = products, cols = distinct literals + 1. *)

val size_formula : ?method_:Nxc_logic.Minimize.method_ -> Nxc_logic.Boolfunc.t -> Model.dims

val placement : t -> Model.placement

val cover : t -> Nxc_logic.Cover.t

val literal_columns : t -> (int * Nxc_logic.Cube.polarity) array
(** Column index [c] carries this literal, for [c < cols - 1]; the last
    column is the output. *)

val row_value : t -> int -> int -> bool
(** [row_value xbar m r]: wired-AND value of row [r] under assignment
    [m], computed from the placement. *)

val eval_int : t -> int -> bool

val eval : t -> bool array -> bool

val pp : Format.formatter -> t -> unit
