lib/crossbar/model.mli:
