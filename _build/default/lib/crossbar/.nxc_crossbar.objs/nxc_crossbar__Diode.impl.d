lib/crossbar/diode.ml: Array Format Hashtbl List Model Nxc_logic Printf String
