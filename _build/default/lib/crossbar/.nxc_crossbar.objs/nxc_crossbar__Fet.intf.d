lib/crossbar/fet.mli: Format Model Nxc_logic
