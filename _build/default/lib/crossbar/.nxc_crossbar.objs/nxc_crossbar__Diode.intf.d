lib/crossbar/diode.mli: Format Model Nxc_logic
