lib/crossbar/multi.mli: Format Model Nxc_logic
