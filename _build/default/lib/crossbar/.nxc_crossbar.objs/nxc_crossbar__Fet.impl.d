lib/crossbar/fet.ml: Array Format Hashtbl List Model Nxc_logic
