lib/crossbar/folding.ml: Array Diode Fun List Model Nxc_logic
