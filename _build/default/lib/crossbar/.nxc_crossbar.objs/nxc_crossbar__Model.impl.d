lib/crossbar/model.ml: Array
