lib/crossbar/metrics.mli: Diode Fet Format Model
