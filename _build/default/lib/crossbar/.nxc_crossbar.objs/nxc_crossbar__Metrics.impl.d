lib/crossbar/metrics.ml: Array Diode Fet Format List Model Nxc_logic
