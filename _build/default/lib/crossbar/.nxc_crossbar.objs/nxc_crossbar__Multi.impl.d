lib/crossbar/multi.ml: Array Diode Format Hashtbl List Model Nxc_logic String
