lib/crossbar/folding.mli: Diode Model Nxc_logic
