(* nanoxcomp — command-line front end.

   Subcommands:
     synth  <expr>      synthesize one function on every technology
     suite              size table over the benchmark suite
     bist               BIST plan statistics and coverage
     bism               self-mapping experiment on random chips
     flow   <expr>      end-to-end synthesize/map/verify pipeline
     yield              k x k recovery statistics
     repair             BIRA/BISR spare-repair experiment on random chips
     stats  <expr>      end-to-end flow + full metrics snapshot
     batch  <jobs.jsonl>  run a JSONL job file through the service engine
     serve              long-lived worker: job specs on stdin, results on stdout

   Every subcommand accepts --trace[=FILE], --trace-format, --metrics,
   the budget flags (--budget-steps, --deadline-ms, --on-exhaustion)
   and --jobs (see the CLI contract section of README.md). *)

open Cmdliner
open Nxc_logic
module R = Nxc_reliability
module Lt = Nxc_lattice
module C = Nxc_core
module Obs = Nxc_obs
module Guard = Nxc_guard

(* ------------------------------------------------------------------ *)
(* observability flags, shared by every subcommand                     *)
(* ------------------------------------------------------------------ *)

type trace_format = Tree | Jsonl | Chrome

let obs_setup trace format metrics log =
  (match log with
  | Some d -> Obs.Log.enable ~dest:d ()
  | None -> () (* NANOXCOMP_LOG may already have enabled it *));
  let dest =
    match trace with
    | Some d ->
        Obs.Span.enable ();
        Some d
    | None -> if Obs.Span.enabled () then Some "-" else None
  in
  (* registered before the trace handler so metrics (stdout) print
     before the stderr trace when both are enabled *)
  if metrics then
    at_exit (fun () ->
        print_string (Obs.Metrics.dump_text ());
        flush stdout);
  match dest with
  | None -> ()
  | Some d ->
      at_exit (fun () ->
          match
            if d = "-" then Ok (Format.err_formatter, fun () -> ())
            else
              match open_out d with
              | oc -> Ok (Format.formatter_of_out_channel oc, fun () -> close_out oc)
              | exception Sys_error msg -> Error msg
          with
          | Error msg -> Format.eprintf "cannot write trace: %s@." msg
          | Ok (ppf, close) ->
              (match format with
              | Tree -> Obs.Span.export_tree ppf
              | Jsonl -> Obs.Span.export_jsonl ppf
              | Chrome -> Obs.Span.export_chrome ppf);
              Format.pp_print_flush ppf ();
              close ())

let obs_term =
  let trace =
    let doc =
      "Record hierarchical spans and export them on exit to $(docv) \
       (use $(b,--trace) alone, or set NANOXCOMP_TRACE, for stderr)."
    in
    Arg.(
      value
      & opt ~vopt:(Some "-") (some string) None
      & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let format =
    let doc = "Trace export format: $(b,tree), $(b,jsonl) or $(b,chrome)." in
    Arg.(
      value
      & opt (enum [ ("tree", Tree); ("jsonl", Jsonl); ("chrome", Chrome) ]) Tree
      & info [ "trace-format" ] ~docv:"FMT" ~doc)
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ] ~doc:"Print the metrics snapshot on exit.")
  in
  let log =
    let doc =
      "Write structured JSONL events to $(docv) (use $(b,--log) alone, or \
       set NANOXCOMP_LOG, for stderr).  Also enables the flight-recorder \
       dump on failing jobs and uncaught exceptions."
    in
    Arg.(
      value
      & opt ~vopt:(Some "-") (some string) None
      & info [ "log" ] ~docv:"FILE" ~doc)
  in
  Term.(const obs_setup $ trace $ format $ metrics $ log)

(* ------------------------------------------------------------------ *)
(* guard flags, shared by every subcommand                             *)
(* ------------------------------------------------------------------ *)

let guard_setup steps deadline_ms on_exhaustion =
  if steps <> None || deadline_ms <> None || on_exhaustion = Guard.Budget.Fail
  then
    Guard.Budget.set_current
      (Guard.Budget.create ~label:"cli" ~policy:on_exhaustion ?steps
         ?deadline_ms ())

let guard_term =
  let steps =
    let doc =
      "Cap the cooperative work budget at $(docv) steps across the whole \
       pipeline (QM merges, covering nodes, mapping retries, ...)."
    in
    Arg.(
      value
      & opt (some int) None
      & info [ "budget-steps" ] ~docv:"STEPS" ~doc)
  in
  let deadline =
    let doc = "Give the pipeline a wall-clock deadline of $(docv) ms." in
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS" ~doc)
  in
  let on_exhaustion =
    let doc =
      "What to do when the budget runs out: $(b,degrade) falls back to \
       cheaper methods and keeps going (default), $(b,fail) stops with \
       exit code 4."
    in
    Arg.(
      value
      & opt
          (enum
             [ ("degrade", Guard.Budget.Degrade); ("fail", Guard.Budget.Fail) ])
          Guard.Budget.Degrade
      & info [ "on-exhaustion" ] ~docv:"POLICY" ~doc)
  in
  Term.(const guard_setup $ steps $ deadline $ on_exhaustion)

(* ------------------------------------------------------------------ *)
(* parallelism flag, shared by every subcommand                        *)
(* ------------------------------------------------------------------ *)

let jobs_term =
  let doc =
    "Run Monte-Carlo trials on $(docv) domains: $(b,1) (default) is \
     sequential, $(b,0) picks one per recommended domain.  Seeded runs \
     produce identical results for every $(docv)."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

(* ------------------------------------------------------------------ *)
(* covering-backend flag, shared by every subcommand                   *)
(* ------------------------------------------------------------------ *)

let backend_term =
  let doc =
    "Exact covering engine for Quine-McCluskey: $(b,bnb) (branch and \
     bound, default) or $(b,sat) (CDCL solver).  Both are exact; on \
     budget exhaustion $(b,sat) degrades back to $(b,bnb) under the \
     $(b,guard.degrade.sat_to_bnb) counter (or exits 4 with \
     $(b,--on-exhaustion fail))."
  in
  let setup b = Qm.set_cover_backend b in
  Term.(
    const setup
    $ Arg.(
        value
        & opt (enum [ ("bnb", Qm.Bnb); ("sat", Qm.Sat) ]) Qm.Bnb
        & info [ "cover-backend" ] ~docv:"ENGINE" ~doc))

(* every subcommand takes the setup terms and receives the --jobs value *)
let common_term =
  Term.(
    const (fun () () () jobs -> jobs)
    $ obs_term $ guard_term $ backend_term $ jobs_term)

let die_error e =
  Guard.Error.count e;
  Format.eprintf "nanoxcomp: %s@." (Guard.Error.to_string e);
  exit (Guard.Error.exit_code e)

let expr_arg =
  let doc = "Boolean expression over x1, x2, ... (e.g. \"x1x2 + x1'x2'\")." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPR" ~doc)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"random seed")

let density_arg =
  Arg.(
    value
    & opt float 0.05
    & info [ "density"; "d" ] ~docv:"D" ~doc:"defect density (fraction)")

let parse_or_die expr =
  match Parse.expr_result expr with Ok f -> f | Error e -> die_error e

(* ------------------------------------------------------------------ *)

let synth_cmd =
  let run _jobs expr show_lattice =
    let f = parse_or_die expr in
    let impl =
      match C.Synth.synthesize_result f with
      | Ok impl -> impl
      | Error e -> die_error e
    in
    if impl.C.Synth.degraded then
      Format.eprintf "note: budget exhausted, synthesis degraded@.";
    let s = C.Synth.sizes impl in
    print_endline C.Report.size_header;
    print_endline (C.Report.size_row s);
    if not (C.Synth.verify impl) then begin
      Format.eprintf "internal error: verification failed@.";
      exit 1
    end;
    Format.printf "@.products(f) = %d, products(f^D) = %d, literals = %d@."
      impl.C.Synth.products impl.C.Synth.dual_products
      impl.C.Synth.distinct_literals;
    if show_lattice then
      Format.printf "@.best lattice:@.%a@." Lt.Lattice.pp
        (C.Synth.best_lattice impl)
  in
  let show_lattice =
    Arg.(value & flag & info [ "lattice" ] ~doc:"print the best lattice grid")
  in
  Cmd.v
    (Cmd.info "synth" ~doc:"synthesize a function on all technologies")
    Term.(const run $ common_term $ expr_arg $ show_lattice)

let suite_cmd =
  let run _jobs full =
    let benches = if full then Nxc_suite.all () else Nxc_suite.core () in
    let rows =
      List.map
        (fun b ->
          C.Synth.sizes
            (C.Synth.synthesize
               ~decompose:(Boolfunc.n_vars b.Nxc_suite.func <= 6)
               b.Nxc_suite.func))
        benches
    in
    print_endline (C.Report.size_table rows)
  in
  let full =
    Arg.(
      value & flag
      & info [ "full" ] ~doc:"include the larger benchmarks (slower)")
  in
  Cmd.v
    (Cmd.info "suite" ~doc:"size comparison over the benchmark suite")
    Term.(const run $ common_term $ full)

let bist_cmd =
  let run _jobs rows cols =
    let plan = R.Bist.plan ~rows ~cols in
    let universe = R.Fault_model.universe ~rows ~cols in
    let cov, und = R.Bist.coverage plan universe in
    Format.printf "plan for %dx%d: %d configurations (%d group), %d vectors@."
      rows cols (R.Bist.num_configs plan)
      (R.Bisd.num_group_configs plan)
      (R.Bist.num_vectors plan);
    Format.printf "faults: %d, coverage %.1f%%@." (List.length universe)
      (100.0 *. cov);
    List.iter
      (fun f -> Format.printf "  UNDETECTED: %a@." R.Fault_model.pp_fault f)
      und
  in
  let rows =
    Arg.(value & opt int 8 & info [ "rows"; "r" ] ~docv:"R" ~doc:"array rows")
  in
  let cols =
    Arg.(value & opt int 8 & info [ "cols"; "c" ] ~docv:"C" ~doc:"array cols")
  in
  Cmd.v
    (Cmd.info "bist" ~doc:"test-plan statistics and fault coverage")
    Term.(const run $ common_term $ rows $ cols)

(* heuristic BISM schemes plus the exact SAT decision procedure *)
type cli_scheme = Heuristic of R.Bism.scheme | Exact_sat

let scheme_conv =
  let parse = function
    | "blind" -> Ok (Heuristic R.Bism.Blind)
    | "greedy" -> Ok (Heuristic R.Bism.Greedy)
    | "hybrid" -> Ok (Heuristic (R.Bism.Hybrid 10))
    | "sat" -> Ok Exact_sat
    | s -> Error (`Msg (Printf.sprintf "unknown scheme %S" s))
  in
  let print ppf = function
    | Heuristic R.Bism.Blind -> Format.pp_print_string ppf "blind"
    | Heuristic R.Bism.Greedy -> Format.pp_print_string ppf "greedy"
    | Heuristic (R.Bism.Hybrid _) -> Format.pp_print_string ppf "hybrid"
    | Exact_sat -> Format.pp_print_string ppf "sat"
  in
  Arg.conv (parse, print)

let bism_cmd =
  let run jobs n k density scheme seed trials =
    Nxc_par.Pool.with_jobs jobs @@ fun pool ->
    match scheme with
    | Heuristic scheme ->
        let mc, _ =
          R.Bism.monte_carlo ?pool (R.Rng.create seed) scheme ~trials ~n
            ~profile:(R.Defect.uniform density) ~k_rows:k ~k_cols:k
            ~max_configs:1000
        in
        Format.printf
          "%d/%d chips mapped (k=%d on N=%d at %.1f%% defects), avg %.1f \
           configurations@."
          mc.R.Bism.mc_mapped trials k n (100.0 *. density)
          mc.R.Bism.mc_avg_configs
    | Exact_sat ->
        let mc =
          R.Sat_assign.monte_carlo ?pool (R.Rng.create seed) ~trials ~n
            ~profile:(R.Defect.uniform density) ~k_rows:k ~k_cols:k
        in
        Format.printf
          "%d/%d chips mapped (k=%d on N=%d at %.1f%% defects), %d proven \
           unmappable, %d degraded@."
          mc.R.Sat_assign.sa_mapped trials k n (100.0 *. density)
          mc.R.Sat_assign.sa_unmappable mc.R.Sat_assign.sa_degraded
  in
  let n = Arg.(value & opt int 32 & info [ "n" ] ~docv:"N" ~doc:"chip side") in
  let k =
    Arg.(value & opt int 12 & info [ "k" ] ~docv:"K" ~doc:"logical side")
  in
  let scheme =
    Arg.(
      value
      & opt scheme_conv (Heuristic (R.Bism.Hybrid 10))
      & info [ "scheme" ] ~docv:"SCHEME"
          ~doc:
            "blind, greedy or hybrid (heuristic BISM), or sat (exact \
             mappability decision with witness)")
  in
  let trials =
    Arg.(value & opt int 20 & info [ "trials" ] ~docv:"T" ~doc:"chips to try")
  in
  Cmd.v
    (Cmd.info "bism" ~doc:"built-in self-mapping experiment")
    Term.(const run $ common_term $ n $ k $ density_arg $ scheme $ seed_arg $ trials)

let flow_cmd =
  let run _jobs expr n density seed =
    let f = parse_or_die expr in
    let chip =
      R.Defect.generate (R.Rng.create seed) ~rows:n ~cols:n
        (R.Defect.uniform density)
    in
    let result =
      match C.Flow.run_result (R.Rng.create (seed + 1)) ~chip f with
      | Ok r -> r
      | Error e -> die_error e
    in
    let lattice = C.Synth.best_lattice result.C.Flow.impl in
    Format.printf "lattice %dx%d on a %dx%d chip (%.1f%% defects)@."
      (Lt.Lattice.rows lattice) (Lt.Lattice.cols lattice) n n
      (100.0 *. R.Defect.actual_density chip);
    Format.printf "%a@." R.Bism.pp_stats result.C.Flow.bism;
    Format.printf "functional after mapping: %b@." result.C.Flow.functional;
    exit (if result.C.Flow.functional then 0 else 5)
  in
  let n = Arg.(value & opt int 24 & info [ "n" ] ~docv:"N" ~doc:"chip side") in
  Cmd.v
    (Cmd.info "flow" ~doc:"end-to-end synthesize, self-map and verify")
    Term.(const run $ common_term $ expr_arg $ n $ density_arg $ seed_arg)

let yield_cmd =
  let run jobs n density trials =
    Nxc_par.Pool.with_jobs jobs @@ fun pool ->
    let profile = R.Defect.uniform density in
    let ek =
      R.Yield_model.expected_max_k ?pool (R.Rng.create 1) ~trials ~n ~profile
    in
    Format.printf "N=%d, density %.1f%%: mean recovered k = %.1f@." n
      (100.0 *. density) ek;
    List.iter
      (fun y ->
        let k =
          R.Yield_model.guaranteed_k ?pool (R.Rng.create 2) ~trials ~n
            ~profile ~min_yield:y
        in
        Format.printf "  k guaranteed at %.0f%% yield: %d@." (100.0 *. y) k)
      [ 0.5; 0.9; 0.99 ]
  in
  let n = Arg.(value & opt int 32 & info [ "n" ] ~docv:"N" ~doc:"chip side") in
  let trials =
    Arg.(value & opt int 40 & info [ "trials" ] ~docv:"T" ~doc:"Monte Carlo trials")
  in
  Cmd.v
    (Cmd.info "yield" ~doc:"defect-unaware flow yield statistics")
    Term.(const run $ common_term $ n $ density_arg $ trials)

let repair_cmd =
  let run jobs rows cols spare_rows spare_cols density seed trials mode =
    if spare_rows < 0 || spare_cols < 0 then
      die_error
        (Guard.Error.invalid_input "spare budgets must be non-negative");
    let profile =
      match R.Defect.validate_profile (R.Defect.uniform density) with
      | Ok p -> p
      | Error e -> die_error e
    in
    Nxc_par.Pool.with_jobs jobs @@ fun pool ->
    let mc, _ =
      R.Bira.monte_carlo ?pool ~mode (R.Rng.create seed) ~trials ~rows ~cols
        ~spare_rows ~spare_cols ~profile
    in
    let overhead =
      Nxc_crossbar.Metrics.spare_overhead ~rows ~cols ~spare_rows ~spare_cols
        ()
    in
    Format.printf
      "%d/%d chips repaired (%dx%d + %d/%d spares at %.1f%% defects)@."
      mc.R.Bira.mc_repaired trials rows cols spare_rows spare_cols
      (100.0 *. density);
    Format.printf
      "avg %.1f spare lines per repaired chip, %d must-repair lines, %d \
       degraded trials@."
      mc.R.Bira.mc_avg_spares mc.R.Bira.mc_must_lines mc.R.Bira.mc_degraded;
    Format.printf "spare area overhead: %.1f%%@."
      (100.0 *. overhead.Nxc_crossbar.Metrics.area_overhead)
  in
  let rows =
    Arg.(
      value & opt int 12 & info [ "rows"; "r" ] ~docv:"R" ~doc:"logical rows")
  in
  let cols =
    Arg.(
      value & opt int 12 & info [ "cols"; "c" ] ~docv:"C" ~doc:"logical cols")
  in
  let spare_rows =
    Arg.(
      value & opt int 2
      & info [ "spare-rows" ] ~docv:"SR" ~doc:"spare rows fabricated")
  in
  let spare_cols =
    Arg.(
      value & opt int 2
      & info [ "spare-cols" ] ~docv:"SC" ~doc:"spare columns fabricated")
  in
  let trials =
    Arg.(value & opt int 20 & info [ "trials" ] ~docv:"T" ~doc:"chips to try")
  in
  let mode =
    Arg.(
      value
      & opt (enum [ ("exact", R.Bira.Exact); ("greedy", R.Bira.Greedy) ])
          R.Bira.Exact
      & info [ "mode" ] ~docv:"MODE" ~doc:"spare allocation: exact or greedy")
  in
  Cmd.v
    (Cmd.info "repair" ~doc:"BIRA/BISR spare-repair experiment")
    Term.(
      const run $ common_term $ rows $ cols $ spare_rows $ spare_cols
      $ density_arg $ seed_arg $ trials $ mode)

let pla_cmd =
  let run _jobs path =
    let text =
      let ic = open_in path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    in
    match Parse.pla_of_string_result text with
    | Error e -> die_error e
    | Ok p ->
        let fs =
          Array.to_list
            (Array.mapi
               (fun o cover ->
                 let name =
                   match p.Parse.output_labels with
                   | Some labels when List.length labels > o ->
                       List.nth labels o
                   | _ -> Printf.sprintf "y%d" o
                 in
                 Boolfunc.of_cover ~name cover)
               p.Parse.on_sets)
        in
        let nonconst =
          List.filter (fun f -> Boolfunc.is_const f = None) fs
        in
        Format.printf "%d inputs, %d outputs (%d non-constant)@.@."
          p.Parse.inputs p.Parse.outputs (List.length nonconst);
        print_endline C.Report.size_header;
        List.iter
          (fun f ->
            print_endline (C.Report.size_row (C.Synth.sizes (C.Synth.synthesize f))))
          nonconst;
        match nonconst with
        | _ :: _ :: _ ->
            let x = Nxc_crossbar.Multi.synthesize nonconst in
            let d = Nxc_crossbar.Multi.dims x in
            Format.printf
              "@.shared multi-output crossbar: %dx%d (%d products)@."
              d.Nxc_crossbar.Model.rows d.Nxc_crossbar.Model.cols
              (Nxc_crossbar.Multi.num_products x)
        | _ -> ()
  in
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"PLA file")
  in
  Cmd.v
    (Cmd.info "pla" ~doc:"synthesize every output of a Berkeley PLA file")
    Term.(const run $ common_term $ path)

let machine_cmd =
  let run _jobs program n =
    let prog =
      match program with
      | "sum" -> C.Machine.assemble_sum_1_to_n ~n
      | "fib" -> C.Machine.assemble_fibonacci ~steps:n
      | p ->
          Format.eprintf "unknown program %S (have: sum, fib)@." p;
          exit 2
    in
    let m = C.Machine.create ~word_bits:8 ~data_words:8 ~program:prog () in
    Format.printf
      "accumulator machine: %d lattice sites of combinational logic@."
      (C.Machine.lattice_sites m);
    let final = C.Machine.run m in
    Format.printf "ran %S n=%d: %d cycles, result mem[0] = %d@." program n
      final.C.Machine.steps (C.Machine.peek m 0)
  in
  let program =
    Arg.(value & pos 0 string "sum" & info [] ~docv:"PROGRAM" ~doc:"sum or fib")
  in
  let n =
    Arg.(value & opt int 10 & info [ "n" ] ~docv:"N" ~doc:"program parameter")
  in
  Cmd.v
    (Cmd.info "machine"
       ~doc:"run a demo program on the lattice-fabric accumulator machine")
    Term.(const run $ common_term $ program $ n)

let stats_cmd =
  let run _jobs expr json prom n density seed =
    let f = parse_or_die expr in
    let chip =
      R.Defect.generate (R.Rng.create seed) ~rows:n ~cols:n
        (R.Defect.uniform density)
    in
    let result = C.Flow.run (R.Rng.create (seed + 1)) ~chip f in
    Format.printf "flow: mapped=%b functional=%b@.@."
      result.C.Flow.bism.R.Bism.success result.C.Flow.functional;
    if prom then print_string (Obs.Metrics.dump_prometheus ())
    else if json then
      print_endline (Obs.Json.to_string (Obs.Metrics.dump_json ()))
    else print_string (Obs.Metrics.dump_text ())
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"emit the snapshot as JSON instead of text")
  in
  let prom =
    Arg.(
      value & flag
      & info [ "prom" ]
          ~doc:"emit the snapshot as Prometheus text exposition")
  in
  let n = Arg.(value & opt int 24 & info [ "n" ] ~docv:"N" ~doc:"chip side") in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "run the end-to-end flow once and print the pipeline metrics \
          snapshot")
    Term.(
      const run $ common_term $ expr_arg $ json $ prom $ n $ density_arg
      $ seed_arg)

(* ------------------------------------------------------------------ *)
(* service modes: batch + serve                                        *)
(* ------------------------------------------------------------------ *)

module Svc = Nxc_service

let cache_arg =
  let doc =
    "Persist the result cache to $(docv) (loaded before the run, saved \
     after).  $(b,--cache) alone uses the default path; without the \
     flag the cache lives in memory for the run only."
  in
  Arg.(
    value
    & opt ~vopt:(Some Svc.Cache.default_path) (some string) None
    & info [ "cache" ] ~docv:"FILE" ~doc)

(* one cache shard per runner slot, so parallel cache traffic contends
   on different locks; a sequential run keeps the historical single
   shard (and its exact metric surface) *)
let shards_of_pool = function
  | Some p -> Nxc_par.Pool.slots p
  | None -> 1

let with_disk_cache ?shards path f =
  let cache = Svc.Cache.create ?shards () in
  (match path with
  | None -> ()
  | Some p -> (
      match Svc.Cache.load cache p with
      | Ok _ -> ()
      | Error e ->
          Format.eprintf "nanoxcomp: ignoring cache %s: %s@." p
            (Guard.Error.to_string e)));
  let r = f cache in
  (match path with
  | None -> ()
  | Some p -> (
      match Svc.Cache.save cache p with
      | Ok _ -> ()
      | Error e ->
          Format.eprintf "nanoxcomp: cannot save cache %s: %s@." p
            (Guard.Error.to_string e)));
  r

let batch_cmd =
  let run jobs path cache_path output =
    let lines =
      match open_in path with
      | exception Sys_error msg ->
          die_error (Guard.Error.invalid_input msg)
      | ic ->
          let rec go acc =
            match input_line ic with
            | exception End_of_file ->
                close_in ic;
                List.rev acc
            | "" -> go acc
            | l -> go (l :: acc)
          in
          go []
    in
    let outcomes =
      Nxc_par.Pool.with_jobs jobs @@ fun pool ->
      with_disk_cache ~shards:(shards_of_pool pool) cache_path
      @@ fun cache -> Svc.Engine.run_lines ?pool ~cache lines
    in
    let oc, close =
      match output with
      | None -> (stdout, fun () -> flush stdout)
      | Some p -> (
          match open_out p with
          | oc -> (oc, fun () -> close_out oc)
          | exception Sys_error msg ->
              die_error (Guard.Error.invalid_input msg))
    in
    List.iter
      (fun o ->
        output_string oc (Obs.Json.to_string o.Svc.Engine.envelope);
        output_char oc '\n')
      outcomes;
    close ();
    let code = Svc.Engine.batch_exit outcomes in
    if code <> 0 then
      Obs.Log.dump_flight
        ~reason:(Printf.sprintf "batch exit %d" code);
    exit code
  in
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"JOBS" ~doc:"JSONL job file (one spec per line)")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "output"; "o" ] ~docv:"FILE"
          ~doc:"Write result envelopes to $(docv) instead of stdout.")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "process a JSONL job file through the service engine \
          (deterministically ordered results, NPN-cached synthesis)")
    Term.(const run $ common_term $ path $ cache_arg $ output)

let serve_cmd =
  let run jobs cache_path window deadline_ms =
    Nxc_par.Pool.with_jobs jobs @@ fun pool ->
    with_disk_cache ~shards:(shards_of_pool pool) cache_path @@ fun cache ->
    (* the historical synchronous loop stays the --jobs 1 path;
       streaming (windowed read-ahead + admission) engages as soon as
       any of the concurrency flags is given *)
    if jobs = 1 && window = None && deadline_ms = None then
      let rec loop () =
        match input_line stdin with
        | exception End_of_file -> ()
        | "" -> loop ()
        | "__stats__" ->
            (* control line: one-line metrics snapshot (with quantiles),
               never a job envelope, so clients can poll between jobs *)
            print_string (Obs.Json.to_string (Obs.Metrics.dump_json ()));
            print_newline ();
            flush stdout;
            loop ()
        | line ->
            let o = Svc.Engine.run_line ~cache line in
            print_string (Obs.Json.to_string o.Svc.Engine.envelope);
            print_newline ();
            flush stdout;
            if o.Svc.Engine.exit_code <> 0 then
              Obs.Log.dump_flight
                ~reason:
                  (Printf.sprintf "serve envelope exit %d"
                     o.Svc.Engine.exit_code);
            loop ()
      in
      loop ()
    else begin
      let stream =
        Svc.Engine.Stream.create ?pool ~cache ?window ?deadline_ms ()
      in
      let emit outs =
        List.iter
          (fun o ->
            print_string (Obs.Json.to_string o.Svc.Engine.envelope);
            print_newline ();
            if o.Svc.Engine.exit_code <> 0 then
              Obs.Log.dump_flight
                ~reason:
                  (Printf.sprintf "serve envelope exit %d"
                     o.Svc.Engine.exit_code))
          outs;
        if outs <> [] then flush stdout
      in
      let rec loop () =
        match input_line stdin with
        | exception End_of_file -> emit (Svc.Engine.Stream.flush stream)
        | "" -> loop ()
        | "__flush__" ->
            (* control line: drain the window without waiting for it to
               fill (clients that need an answer now) *)
            emit (Svc.Engine.Stream.flush stream);
            loop ()
        | "__stats__" ->
            (* pending jobs resolve first, so the snapshot reflects
               everything read so far *)
            emit (Svc.Engine.Stream.flush stream);
            print_string (Obs.Json.to_string (Obs.Metrics.dump_json ()));
            print_newline ();
            flush stdout;
            loop ()
        | line ->
            emit (Svc.Engine.Stream.push stream line);
            loop ()
      in
      loop ()
    end
  in
  let window_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "window" ] ~docv:"N"
          ~doc:
            "Stream up to $(docv) jobs in flight before resolving a \
             batch (default: 4 per runner slot).  Implies the \
             pipelined serve loop even at --jobs 1.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "job-deadline-ms" ] ~docv:"MS"
          ~doc:
            "Admission control: reject a job up-front (error envelope, \
             exit code 4, label \"admission\") when the queue ahead of \
             it is not expected to drain within $(docv) milliseconds.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "long-lived worker: read one JSON job spec per stdin line, \
          answer with one result envelope per stdout line (--jobs N \
          pipelines a bounded window of jobs through the pool; \
          __stats__ and __flush__ are control lines)")
    Term.(const run $ common_term $ cache_arg $ window_arg $ deadline_arg)

let () =
  (* NANOXCOMP_VERBOSE=debug|info enables library tracing *)
  (match Sys.getenv_opt "NANOXCOMP_VERBOSE" with
  | Some level ->
      Logs.set_reporter (Logs.format_reporter ());
      Logs.set_level
        (match level with
        | "debug" -> Some Logs.Debug
        | "info" -> Some Logs.Info
        | _ -> Some Logs.Warning)
  | None -> ());
  let info =
    Cmd.info "nanoxcomp" ~version:"1.0.0"
      ~doc:"logic synthesis and fault tolerance for nano-crossbar arrays"
  in
  (* exit-code contract: 0 ok, 1 internal error, 2 usage, 3 invalid
     input, 4 budget exhausted without degradation, 5 unsat/non-
     functional.  Subcommands exit with 1/3/4/5 themselves (via
     [die_error]); usage and uncaught-exception outcomes are mapped
     here. *)
  exit
    (match
       Cmd.eval_value
         (Cmd.group info
            [ synth_cmd; suite_cmd; bist_cmd; bism_cmd; flow_cmd; yield_cmd;
              repair_cmd; pla_cmd; machine_cmd; stats_cmd; batch_cmd;
              serve_cmd ])
     with
    | Ok (`Ok ()) | Ok `Help | Ok `Version -> 0
    | Error (`Parse | `Term) -> 2
    | Error `Exn ->
        (* cmdliner already printed the exception; the flight recorder
           has the last thing the process was doing (when --log is on) *)
        Obs.Log.dump_flight ~reason:"uncaught exception";
        1)
